"""The warm-start client (``repro submit`` and library use).

A small synchronous client over the length-prefixed JSON protocol:

* **retry with backoff** — connection failures and ``queue-full``
  rejections are retried up to ``retries`` times; queue-full honours
  the daemon's ``retry_after`` hint, connection failures use a fixed
  deterministic backoff (no jitter — the reproduction keeps every
  schedule derivable from its inputs);
* **graceful degradation** — :func:`tune_with_fallback` is the entry
  point callers actually want: it asks the daemon first and, when the
  daemon is unreachable or persistently rejecting, falls back to
  in-process tuning through a local
  :class:`~repro.runtime.engine.ExecutionEngine` (charging
  ``orion_client_fallbacks_total`` so silent degradation shows up in
  metrics);
* **ring awareness** — :class:`RingClient` speaks to a ``--ring``
  cluster: it derives the same consistent-hash placement the daemons
  use (kernel fingerprint → owner), sends each request to the best
  node first, and fails over ring-wise when a node is down (charging
  ``orion_client_failovers_total``);
* **observability** — every logical request (including all its
  retries) is timed into the ``orion_client_request_seconds``
  histogram by type and outcome, so loadtest percentiles are
  cross-checkable against exported metrics; retries, failovers and
  fallbacks land in the structured log (``$ORION_LOG``); and when the
  client runs traced — an ambient trace context or telemetry hub is
  installed, or ``trace=True`` was passed — it mints a trace id,
  opens a ``client_request`` span, and stamps ``trace_id``/
  ``parent_span_id`` onto the wire envelope so the daemon's spans
  join the same distributed trace.  Untraced clients put exactly the
  pre-tracing bytes on the wire.

Every retry sleep is floored at :data:`MIN_BACKOFF`: a zero ``backoff``
or a zero ``retry_after`` hint from the daemon must never turn the
retry loop into a hot spin against a struggling service.

The client never holds a connection across requests: each request is
one connect/send/receive/close round trip, which keeps it trivially
safe to use from multiple threads and immune to daemon restarts.
"""

from __future__ import annotations

import base64
import socket
import time
from pathlib import Path

from repro.compiler.multiversion import MultiVersionBinary
from repro.runtime.session import Workload
from repro.service import protocol
from repro.service.protocol import ProtocolError

#: lowest allowed retry sleep (seconds); see the module docstring
MIN_BACKOFF = 0.01

#: client-request-latency boundaries — the daemon's request buckets,
#: so client-side and daemon-side histograms compare bucket-for-bucket
_LATENCY_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)


class ServiceUnavailable(ConnectionError):
    """The daemon could not be reached (or kept rejecting) in time.

    A :class:`ConnectionError` so callers treating the service as plain
    I/O (the CLI's ``except OSError``) degrade without special-casing.
    """


class ServiceRejected(Exception):
    """The daemon answered with a non-retryable failure response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def read_port_file(path: str | Path) -> int:
    """The port a daemon wrote via ``--port-file``."""
    text = Path(path).read_text(encoding="utf-8").strip()
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"port file {path} does not contain a port") from None


class TuningClient:
    """One daemon endpoint, sync, connection-per-request."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        port_file: str | Path | None = None,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
        trace: bool | None = None,
    ) -> None:
        if port is None and port_file is None:
            raise ValueError("need a port or a port file")
        self.host = host
        self._port = port
        self._port_file = port_file
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        #: None = trace when a trace context or telemetry hub is
        #: ambient; True = always mint; False = never stamp the wire
        self.trace = trace

    @property
    def port(self) -> int:
        if self._port is None:
            self._port = read_port_file(self._port_file)
        return self._port

    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """One logical request: tracing, timing, then retry/backoff.

        Retryable: connection failures and ``queue-full`` rejections.
        Anything else — including other error responses — returns (or
        raises) immediately.  The whole exchange (all attempts) is one
        ``orion_client_request_seconds`` observation; when traced, it
        is also one ``client_request`` span and the wire envelope
        carries the trace context.
        """
        type_ = str(payload.get("type", "unknown"))
        started = time.perf_counter()
        outcome = "unavailable"
        try:
            ctx = self._trace_context()
            if ctx is None:
                response = self._attempts(payload)
            else:
                response = self._traced_attempts(payload, ctx)
            if response.get("ok") is False:
                outcome = str(response.get("code", "error"))
            else:
                outcome = "ok"
            return response
        finally:
            _charge_latency(
                type_, outcome, time.perf_counter() - started
            )

    def _trace_context(self):
        """The context this request runs under, or ``None`` untraced."""
        if self.trace is False:
            return None
        from repro.obs.spans import current_hub
        from repro.obs.tracectx import TraceContext, current_trace, new_trace_id

        ctx = current_trace()
        if ctx is not None:
            return ctx
        if self.trace or current_hub() is not None:
            return TraceContext(new_trace_id())
        return None

    def _traced_attempts(self, payload: dict, ctx) -> dict:
        """Run the retry loop inside ``ctx``, under a client span.

        The span's id becomes the wire ``parent_span_id``, so the
        daemon's ``daemon_request`` span can name its remote parent.
        Without a hub there is no local span (nothing would record it)
        and the request is stamped with the context's own parent.
        """
        from repro.obs.spans import current_hub, current_span, span
        from repro.obs.tracectx import use_trace

        with use_trace(ctx):
            if current_hub() is None:
                wire = protocol.stamp_trace(
                    payload, ctx.trace_id, ctx.parent_span_id
                )
                return self._attempts(wire)
            with span(
                "client_request",
                type=payload.get("type"),
                target=f"{self.host}:{self.port}",
            ):
                active = current_span()
                parent = (
                    active.span_id
                    if active is not None and active.span_id is not None
                    else ctx.parent_span_id
                )
                wire = protocol.stamp_trace(payload, ctx.trace_id, parent)
                return self._attempts(wire)

    def _attempts(self, payload: dict) -> dict:
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                delay = self._delay(last_error, attempt)
                _log().warn(
                    "client_retry",
                    target=f"{self.host}:{self.port}",
                    type=payload.get("type"),
                    attempt=attempt,
                    delay=delay,
                    error=str(last_error),
                )
                time.sleep(delay)
            try:
                response = self._round_trip(payload)
            except (ConnectionError, OSError, ProtocolError) as exc:
                last_error = exc
                continue
            if (
                response.get("ok") is False
                and response.get("code") == protocol.CODE_QUEUE_FULL
            ):
                last_error = ServiceRejected(
                    response["code"], response.get("error", "queue full")
                )
                last_error.retry_after = response.get("retry_after")
                continue
            return response
        _log().error(
            "client_unavailable",
            target=f"{self.host}:{self.port}",
            type=payload.get("type"),
            attempts=self.retries + 1,
            error=str(last_error),
        )
        raise ServiceUnavailable(
            f"daemon at {self.host}:{self.port} unavailable after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )

    def _delay(self, last_error: Exception | None, attempt: int) -> float:
        """The sleep before retry ``attempt``, floored at MIN_BACKOFF.

        Without the floor, ``backoff=0`` (or a daemon hinting
        ``retry_after: 0``) degenerated into a hot loop hammering the
        exact daemon that just said it was overloaded.
        """
        hinted = getattr(last_error, "retry_after", None)
        if hinted is not None:
            return max(float(hinted), MIN_BACKOFF)
        return max(self.backoff * attempt, MIN_BACKOFF)

    def _round_trip(self, payload: dict) -> dict:
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            protocol.send_frame(sock, payload)
            return protocol.recv_frame(sock)

    # ------------------------------------------------------------------
    # Typed requests
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self._checked(self.request(protocol.request("ping")))

    def stats(self) -> dict:
        return self._checked(self.request(protocol.request("stats")))

    def query(self, key: str, kernel: str | None = None) -> dict:
        """Look up a key; ``kernel`` (the kernel fingerprint) lets a
        clustered daemon forward a local miss to the ring owner."""
        fields: dict = {"key": key}
        if kernel:
            fields["kernel"] = kernel
        return self._checked(self.request(protocol.request("query", **fields)))

    def invalidate(self, key: str) -> dict:
        return self._checked(
            self.request(protocol.request("invalidate", key=key))
        )

    def shutdown(self) -> dict:
        return self._checked(self.request(protocol.request("shutdown")))

    def tune(self, binary: MultiVersionBinary, workload: Workload) -> dict:
        """Tune via the daemon; returns the response (``source`` says
        whether it was a warm store hit, a fresh tune, or a dedup join).
        """
        return self._checked(
            self.request(
                protocol.request(
                    "tune",
                    binary=base64.b64encode(binary.to_bytes()).decode("ascii"),
                    workload=workload_payload(workload),
                )
            )
        )

    @staticmethod
    def _checked(response: dict) -> dict:
        if response.get("ok") is not True:
            raise ServiceRejected(
                response.get("code", "unknown"),
                response.get("error", "daemon rejected the request"),
            )
        return response


class RingClient:
    """A client over a whole daemon ring (``repro submit --ring``).

    Routing mirrors the daemons' placement exactly: the same
    :class:`~repro.service.cluster.HashRing` over the same node list
    computes the same owner for the same kernel fingerprint, so the
    first connection usually lands on the node that holds (or will
    own) the answer.  When that node is unreachable the request fails
    over to the next ring-wise node — which, for warm keys, is a
    replica holding a copy — until the ring is exhausted.
    """

    def __init__(
        self,
        ring: str | list[str],
        timeout: float = 10.0,
        retries: int = 1,
        backoff: float = 0.05,
        vnodes: int | None = None,
    ) -> None:
        from repro.service.cluster import DEFAULT_VNODES, HashRing

        self.ring = HashRing(ring, vnodes or DEFAULT_VNODES)
        self.nodes = self.ring.nodes
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._clients: dict[str, TuningClient] = {}

    def client_for(self, node: str) -> TuningClient:
        client = self._clients.get(node)
        if client is None:
            from repro.service.cluster import node_address

            host, port = node_address(node)
            client = TuningClient(
                host=host,
                port=port,
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.backoff,
            )
            self._clients[node] = client
        return client

    def route_order(self, kernel_fp: str) -> list[str]:
        """Owner first, then every successor: the full failover order."""
        return self.ring.replicas(kernel_fp, len(self.nodes))

    # ------------------------------------------------------------------
    def tune(self, binary: MultiVersionBinary, workload: Workload) -> dict:
        from repro.service.fingerprint import kernel_fingerprint

        order = self.route_order(kernel_fingerprint(binary))
        return self._failover(order, lambda c: c.tune(binary, workload))

    def query(self, key: str, kernel: str | None = None) -> dict:
        order = self.route_order(kernel) if kernel else list(self.nodes)
        return self._failover(order, lambda c: c.query(key, kernel=kernel))

    def invalidate(self, key: str) -> dict:
        # Any node works: the daemon broadcasts the del op ring-wide.
        return self._failover(
            list(self.nodes), lambda c: c.invalidate(key)
        )

    def ping(self) -> dict:
        return self._failover(list(self.nodes), lambda c: c.ping())

    def stats(self) -> dict:
        return self._failover(list(self.nodes), lambda c: c.stats())

    # ------------------------------------------------------------------
    def _failover(self, order: list[str], call) -> dict:
        last_error: Exception | None = None
        for index, node in enumerate(order):
            try:
                return call(self.client_for(node))
            except ServiceUnavailable as exc:
                last_error = exc
                if index + 1 < len(order):
                    _count_failover(node)
                continue
        raise ServiceUnavailable(
            f"no ring node answered ({', '.join(order)}): {last_error}"
        )


def _count_failover(node: str) -> None:
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_client_failovers_total",
        "Ring requests that failed over past an unreachable node.",
    ).inc(node=node)
    _log().warn("client_failover", node=node)


def _charge_latency(type_: str, outcome: str, elapsed: float) -> None:
    from repro.obs.metrics import get_registry

    get_registry().histogram(
        "orion_client_request_seconds",
        "Client-observed request latency (all retries) by type and "
        "outcome.",
        buckets=_LATENCY_BUCKETS,
    ).observe(elapsed, type=type_, outcome=outcome)


def _log():
    from repro.obs.log import get_logger

    return get_logger()


def workload_payload(workload: Workload) -> dict:
    """The wire form of a :class:`Workload` (daemon-side inverse:
    :func:`repro.service.daemon.workload_from_payload`)."""
    payload: dict = {
        "grid_blocks": workload.launch.grid_blocks,
        "block_size": workload.launch.block_size,
        "iterations": workload.iterations,
        "ilp": workload.ilp,
        "max_events_per_warp": workload.max_events_per_warp,
    }
    if workload.launch.params:
        payload["params"] = {
            str(k): v for k, v in workload.launch.params.items()
        }
    if workload.work_profile:
        payload["work_profile"] = list(workload.work_profile)
    traits = workload.traits
    defaults = type(traits)()
    trait_fields = {
        name: getattr(traits, name)
        for name in traits.__dataclass_fields__
        if getattr(traits, name) != getattr(defaults, name)
    }
    if trait_fields:
        payload["traits"] = trait_fields
    return payload


def tune_with_fallback(
    client: TuningClient,
    binary: MultiVersionBinary,
    workload: Workload,
    arch,
    backend: str = "timing",
) -> dict:
    """Daemon-first tuning with graceful degradation.

    Returns a tune response shaped like the daemon's (``source`` is
    ``"local"`` when the fallback path ran).  The fallback builds a
    throwaway local engine, so it works with no daemon on the machine
    at all — the service layer is an accelerator, never a dependency.
    """
    try:
        return client.tune(binary, workload)
    except (ServiceUnavailable, ServiceRejected) as exc:
        _count_fallback(type(exc).__name__)
        _log().warn(
            "client_fallback", reason=type(exc).__name__, error=str(exc)
        )
        from repro.runtime.engine import ExecutionEngine
        from repro.runtime.session import TuningSession
        from repro.service.fingerprint import kernel_fingerprint, tuning_key
        from repro.service.store import record_from_report

        engine = ExecutionEngine(arch, backend=backend)
        report = engine.run(TuningSession(binary, workload))
        key = tuning_key(
            binary, workload, arch.name, engine.backend.name,
            engine.cache_config.value, arch_fingerprint=arch.fingerprint(),
        )
        record = record_from_report(
            key, kernel_fingerprint(binary), binary, report,
            arch.name, engine.backend.name,
        )
        return {
            "ok": True,
            "source": "local",
            "key": key,
            "record": record.to_payload(),
            "degraded_reason": str(exc),
        }


def _count_fallback(reason: str) -> None:
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_client_fallbacks_total",
        "Tune requests that degraded to in-process tuning.",
    ).inc(reason=reason)
