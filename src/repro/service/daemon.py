"""The asyncio tuning daemon (``repro serve``).

A localhost socket server that turns the in-process tuning machinery
into a shared service: clients submit a multi-version binary plus a
workload description; the daemon answers from the persistent
:class:`~repro.service.store.TuningStore` when it already knows the
winner (a *warm hit* — zero measurement-backend invocations) and
otherwise drives one :class:`~repro.runtime.session.TuningSession`
through its :class:`~repro.runtime.engine.ExecutionEngine` worker pool
and publishes the converged result back to the store.

Load discipline, in order of application:

1. **single-flight dedup** — concurrent tune requests for the same
   tuning key join one in-flight job instead of re-measuring;
2. **admission control** — at most ``max_pending`` distinct tune jobs
   may be queued or running; beyond that the request is rejected
   immediately with ``code="queue-full"`` and a ``retry_after`` hint
   (backpressure, not buffering);
3. **per-request timeout** — a tune that exceeds ``request_timeout``
   answers ``code="timeout"`` while the underlying job keeps running
   (a later identical request joins it via single-flight).

Below the session layer, concurrent cold tunes share the engine's
:class:`~repro.runtime.engine.MeasurementPool`: candidate measurements
from different tune jobs are deduplicated per cache key and dispatched
in batches (``ORION_ENGINE_BATCH``), exactly like ``run_many``.

Every request is wrapped in a ``daemon_request`` span, charged to
``orion_daemon_requests_total{type,outcome}`` and the
``orion_daemon_request_seconds`` histogram, and the live job count is
mirrored in the ``orion_daemon_queue_depth`` gauge — so a trace plus a
metrics snapshot fully narrates what the daemon did.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import os
import struct
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.compiler.multiversion import MultiVersionBinary
from repro.obs.spans import span, use_hub
from repro.runtime.engine import ExecutionEngine
from repro.runtime.session import TuningSession, Workload
from repro.service import protocol
from repro.service.fingerprint import tuning_key
from repro.service.store import TuningRecord, TuningStore, record_from_report
from repro.sim.interp import LaunchConfig
from repro.sim.trace import MemoryTraits

#: request-latency histogram boundaries (seconds) — sub-millisecond
#: store hits through multi-second cold tunes
_LATENCY_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)


@dataclass
class DaemonConfig:
    """Everything ``repro serve`` lets an operator set."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral; the bound port lands in port_file
    port_file: str | os.PathLike | None = None
    max_pending: int = 8  # admission bound on queued-or-running tunes
    request_timeout: float = 30.0  # seconds before a tune answers timeout
    retry_after: float = 0.05  # backpressure hint on queue-full rejections
    jobs: int = 2  # worker threads driving the engine


def workload_from_payload(payload: dict) -> Workload:
    """Build a :class:`Workload` from a request's ``workload`` object.

    Raises ``ValueError`` on anything malformed — the daemon maps that
    to a ``bad-request`` response rather than dying.
    """
    if not isinstance(payload, dict):
        raise ValueError("workload must be an object")
    launch = LaunchConfig(
        grid_blocks=int(payload.get("grid_blocks", 1)),
        block_size=int(payload.get("block_size", 32)),
        params={
            int(k): v for k, v in (payload.get("params") or {}).items()
        },
    )
    traits_payload = payload.get("traits") or {}
    if not isinstance(traits_payload, dict):
        raise ValueError("workload.traits must be an object")
    work_profile = payload.get("work_profile")
    if work_profile is not None:
        work_profile = [float(w) for w in work_profile]
    return Workload(
        launch=launch,
        iterations=int(payload.get("iterations", 1)),
        traits=MemoryTraits(**traits_payload),
        ilp=float(payload.get("ilp", 1.0)),
        max_events_per_warp=int(payload.get("max_events_per_warp", 6000)),
        work_profile=work_profile,
    )


def decode_binary(encoded: str) -> MultiVersionBinary:
    try:
        raw = base64.b64decode(encoded.encode("ascii"), validate=True)
    except (AttributeError, binascii.Error, UnicodeEncodeError):
        raise ValueError("binary is not valid base64") from None
    try:
        return MultiVersionBinary.from_bytes(raw)
    except (struct.error, IndexError, KeyError) as exc:
        # A truncated or garbled container raises low-level decode
        # errors; normalize them so the daemon answers bad-request
        # instead of internal.
        raise ValueError(f"binary is malformed: {type(exc).__name__}") from exc


class TuningDaemon:
    """The server: store in front, engine worker pool behind."""

    def __init__(
        self,
        engine: ExecutionEngine,
        store: TuningStore,
        config: DaemonConfig | None = None,
    ) -> None:
        self.engine = engine
        self.store = store
        self.config = config or DaemonConfig()
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.jobs),
            thread_name_prefix="orion-tune",
        )
        # Store calls fsync and contend for a cross-process file lock, so
        # they never run on the event-loop thread.  They get their own
        # single worker (the store serializes internally anyway) rather
        # than the tune pool, where a warm hit could queue behind a
        # multi-second cold tune.
        self._store_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="orion-store"
        )
        #: tuning key → in-flight tune future (single-flight dedup)
        self._inflight: dict[str, asyncio.Future] = {}
        #: distinct tune jobs queued or running (admission control)
        self._pending = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            path = Path(self.config.port_file)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(f"{self.port}\n", encoding="utf-8")

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or a shutdown request)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._stop.wait()
        self._pool.shutdown(wait=True)
        self._store_pool.shutdown(wait=True)
        self.engine.telemetry.flush()

    def stop(self) -> None:
        self._stop.set()

    async def run(self) -> None:
        await self.start()
        await self.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    payload = await protocol.read_frame(reader)
                except protocol.ProtocolError as exc:
                    self._count("unknown", "bad-request")
                    await self._respond(
                        writer,
                        protocol.error(protocol.CODE_BAD_REQUEST, str(exc)),
                    )
                    break  # framing is lost; the connection is unusable
                if payload is None:
                    break  # clean EOF
                response = await self._dispatch(payload)
                await self._respond(writer, response)
                if self._stop.is_set():
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(
        self, writer: asyncio.StreamWriter, response: dict
    ) -> None:
        try:
            await protocol.write_frame(writer, response)
        except (ConnectionError, OSError):
            pass  # client vanished between request and response

    async def _dispatch(self, payload: dict) -> dict:
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            type_ = protocol.validate_request(payload)
        except protocol.ProtocolError as exc:
            self._count("unknown", "bad-request")
            return protocol.error(protocol.CODE_BAD_REQUEST, str(exc))
        with use_hub(self.engine.telemetry), span(
            "daemon_request", type=type_
        ):
            try:
                response, outcome = await self._handle(type_, payload)
            except Exception as exc:  # noqa: BLE001 — daemon must survive
                response = protocol.error(
                    protocol.CODE_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                )
                outcome = "internal-error"
        self._count(type_, outcome)
        _registry().histogram(
            "orion_daemon_request_seconds",
            "Daemon request latency by request type.",
            buckets=_LATENCY_BUCKETS,
        ).observe(loop.time() - start, type=type_)
        return response

    async def _handle(self, type_: str, payload: dict) -> tuple[dict, str]:
        if type_ == "ping":
            return protocol.ok(version=protocol.PROTOCOL_VERSION), "ok"
        if type_ == "stats":
            return await self._stats_response(), "ok"
        if type_ == "shutdown":
            self.stop()
            return protocol.ok(stopping=True), "ok"
        if type_ == "query":
            return await self._query(payload)
        if type_ == "invalidate":
            key = payload.get("key")
            if not isinstance(key, str):
                return (
                    protocol.error(
                        protocol.CODE_BAD_REQUEST, "invalidate needs a key"
                    ),
                    "bad-request",
                )
            removed = await self._store_call(self.store.invalidate, key)
            return protocol.ok(removed=removed), "ok"
        return await self._tune(payload)

    async def _store_call(self, fn, *args):
        """Run one blocking store operation off the event-loop thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._store_pool, fn, *args)

    async def _query(self, payload: dict) -> tuple[dict, str]:
        key = payload.get("key")
        if not isinstance(key, str):
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST, "query needs a key"
                ),
                "bad-request",
            )
        record = await self._store_call(self.store.peek, key)
        if record is None:
            return protocol.ok(found=False, key=key), "miss"
        return protocol.ok(found=True, record=record.to_payload()), "hit"

    # ------------------------------------------------------------------
    # The tune path
    # ------------------------------------------------------------------
    async def _tune(self, payload: dict) -> tuple[dict, str]:
        try:
            binary = decode_binary(payload.get("binary") or "")
            workload = workload_from_payload(payload.get("workload") or {})
        except (ValueError, KeyError, TypeError) as exc:
            return (
                protocol.error(protocol.CODE_BAD_REQUEST, str(exc)),
                "bad-request",
            )
        key = tuning_key(
            binary,
            workload,
            self.engine.arch.name,
            self.engine.backend.name,
            self.engine.cache_config.value,
            arch_fingerprint=self.engine.arch.fingerprint(),
        )
        record = await self._store_call(self.store.get, key)
        if record is not None:
            return (
                protocol.ok(
                    source="store", key=key, record=record.to_payload()
                ),
                "store-hit",
            )
        future = self._inflight.get(key)
        joined = future is not None
        if not joined:
            if self._pending >= self.config.max_pending:
                return (
                    protocol.error(
                        protocol.CODE_QUEUE_FULL,
                        f"{self._pending} tune job(s) pending "
                        f"(bound {self.config.max_pending})",
                        retry_after=self.config.retry_after,
                    ),
                    "queue-full",
                )
            future = self._admit(key, binary, workload)
        try:
            record = await asyncio.wait_for(
                asyncio.shield(future), self.config.request_timeout
            )
        except asyncio.TimeoutError:
            return (
                protocol.error(
                    protocol.CODE_TIMEOUT,
                    f"tune exceeded {self.config.request_timeout}s "
                    "(the job continues; retry to join it)",
                ),
                "timeout",
            )
        except Exception as exc:  # noqa: BLE001 — worker failure, not ours
            return (
                protocol.error(
                    protocol.CODE_INTERNAL,
                    f"tuning failed: {type(exc).__name__}: {exc}",
                ),
                "tune-failed",
            )
        return (
            protocol.ok(
                source="deduped" if joined else "tuned",
                key=key,
                record=record.to_payload(),
            ),
            "deduped" if joined else "tuned",
        )

    def _admit(
        self, key: str, binary: MultiVersionBinary, workload: Workload
    ) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._pool, self._tune_sync, key, binary, workload
        )
        self._inflight[key] = future
        self._pending += 1
        self._set_queue_depth()

        def _done(_future: asyncio.Future) -> None:
            self._inflight.pop(key, None)
            self._pending -= 1
            self._set_queue_depth()

        future.add_done_callback(_done)
        return future

    def _tune_sync(
        self, key: str, binary: MultiVersionBinary, workload: Workload
    ) -> TuningRecord:
        """One cold tune on a worker thread: run, publish, return."""
        from repro.service.fingerprint import kernel_fingerprint

        session = TuningSession(binary, workload)
        report = self.engine.run(session)
        record = record_from_report(
            key,
            kernel_fingerprint(binary),
            binary,
            report,
            self.engine.arch.name,
            self.engine.backend.name,
        )
        # When this store is attached to the engine, engine.run already
        # published the converged winner under this same key; writing it
        # again would double the log growth.  Only write what the engine
        # skipped (detached store, or a session that never converged).
        if self.store.peek(key) is None:
            self.store.put(record)
        return record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    async def _stats_response(self) -> dict:
        stats = await self._store_call(self.store.stats)
        return protocol.ok(
            store=stats.to_payload(),
            daemon={
                "pending": self._pending,
                "max_pending": self.config.max_pending,
                "inflight_keys": len(self._inflight),
                "jobs": self.config.jobs,
                "request_timeout": self.config.request_timeout,
                "arch": self.engine.arch.name,
                "backend": self.engine.backend.name,
            },
        )

    def _set_queue_depth(self) -> None:
        _registry().gauge(
            "orion_daemon_queue_depth",
            "Tune jobs currently queued or running in the daemon.",
        ).set(self._pending)

    def _count(self, type_: str, outcome: str) -> None:
        _registry().counter(
            "orion_daemon_requests_total",
            "Daemon requests by type and outcome.",
        ).inc(type=type_, outcome=outcome)


def _registry():
    from repro.obs.metrics import get_registry

    return get_registry()
