"""The asyncio tuning daemon (``repro serve``).

A localhost socket server that turns the in-process tuning machinery
into a shared service: clients submit a multi-version binary plus a
workload description; the daemon answers from the persistent
:class:`~repro.service.store.TuningStore` when it already knows the
winner (a *warm hit* — zero measurement-backend invocations) and
otherwise drives one :class:`~repro.runtime.session.TuningSession`
through its :class:`~repro.runtime.engine.ExecutionEngine` worker pool
and publishes the converged result back to the store.

Load discipline, in order of application:

1. **single-flight dedup** — concurrent tune requests for the same
   tuning key join one in-flight job instead of re-measuring;
2. **admission control** — at most ``max_pending`` distinct tune jobs
   may be queued or running; beyond that the request is rejected
   immediately with ``code="queue-full"`` and a ``retry_after`` hint
   (backpressure, not buffering);
3. **per-request timeout** — a tune that exceeds ``request_timeout``
   answers ``code="timeout"`` while the underlying job keeps running
   (a later identical request joins it via single-flight).

Below the session layer, concurrent cold tunes share the engine's
:class:`~repro.runtime.engine.MeasurementPool`: candidate measurements
from different tune jobs are deduplicated per cache key and dispatched
in batches (``ORION_ENGINE_BATCH``), exactly like ``run_many``.

Every request is wrapped in a ``daemon_request`` span, charged exactly
once to ``orion_daemon_requests_total{type,outcome}`` and the
``orion_daemon_request_seconds`` histogram, and the live job count is
mirrored in the ``orion_daemon_queue_depth`` gauge — so a trace plus a
metrics snapshot fully narrates what the daemon did.  Framing-level
failures (the connection is unusable afterwards) are counted under the
distinct outcome ``bad-frame`` so they can never alias a dispatched
request's count.

Three always-on diagnostics ride on the same dispatch seam:

* **distributed tracing** — a request carrying ``trace_id``/
  ``parent_span_id`` envelope fields (or any request, when this daemon
  writes a trace file: an untraced request gets a freshly minted id)
  runs under that :class:`~repro.obs.tracectx.TraceContext`; every
  telemetry event it causes — the ``daemon_request`` span, engine and
  session spans on the worker threads, forward and replicate hops to
  peers — carries the trace id, the latency histogram keeps the id as
  an exemplar, and ``repro trace merge`` joins the per-node files back
  into one timeline;
* **structured logging** — lifecycle, failures, and retries go to the
  JSONL log (``--log-file`` / ``$ORION_LOG``) with trace correlation;
* **the flight recorder** — every dispatched request leaves a summary
  (trace, verb, outcome, latency, hops, peer) in a bounded in-memory
  ring, dumped to the log when a request times out or fails and served
  live as ``GET /debug/requests`` on the HTTP sidecar.

**Cluster mode** (``repro serve --ring``, see
:mod:`repro.service.cluster`): the daemon knows its ring position and

* serves *warm hits from its local store* no matter who owns the key
  (replication puts copies everywhere they're allowed to be);
* *forwards* cold tunes for keys it does not own to the owner over the
  v2 ``forward`` verb, loop-guarded by a hop counter — and degrades to
  tuning locally when the owner is unreachable, so a dead node never
  takes its keyspace slice down with it;
* *replicates* every winner it publishes to the key's replica set, and
  answers peers' ``replicate``/``sync`` frames by applying their
  op-log records to its own store.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import os
import struct
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from contextlib import nullcontext

from repro.compiler.multiversion import MultiVersionBinary
from repro.obs.flight import FlightRecorder
from repro.obs.log import StructuredLogger, get_logger
from repro.obs.spans import current_span, span, use_hub
from repro.obs.tracectx import TraceContext, current_trace, new_trace_id, use_trace
from repro.runtime.engine import ExecutionEngine
from repro.runtime.session import TuningSession, Workload
from repro.service import protocol
from repro.service.cluster import ClusterConfig, Replicator, node_address
from repro.service.fingerprint import kernel_fingerprint, tuning_key
from repro.service.store import TuningRecord, TuningStore, record_from_report
from repro.sim.interp import LaunchConfig
from repro.sim.trace import MemoryTraits

#: request-latency histogram boundaries (seconds) — sub-millisecond
#: store hits through multi-second cold tunes
_LATENCY_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)

#: pull-side catch-up at startup: per-peer attempts and spacing
_SYNC_ATTEMPTS = 3
_SYNC_RETRY_DELAY = 0.2


@dataclass
class DaemonConfig:
    """Everything ``repro serve`` lets an operator set."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral; the bound port lands in port_file
    port_file: str | os.PathLike | None = None
    max_pending: int = 8  # admission bound on queued-or-running tunes
    request_timeout: float = 30.0  # seconds before a tune answers timeout
    retry_after: float = 0.05  # backpressure hint on queue-full rejections
    jobs: int = 2  # worker threads driving the engine
    http_port: int | None = None  # /metrics + /healthz sidecar (None: off)
    cluster: ClusterConfig | None = field(default=None)  # --ring membership
    log_file: str | os.PathLike | None = None  # structured JSONL log
    flight_entries: int = 128  # flight-recorder ring capacity


def workload_from_payload(payload: dict) -> Workload:
    """Build a :class:`Workload` from a request's ``workload`` object.

    Raises ``ValueError`` on anything malformed — the daemon maps that
    to a ``bad-request`` response rather than dying.
    """
    if not isinstance(payload, dict):
        raise ValueError("workload must be an object")
    launch = LaunchConfig(
        grid_blocks=int(payload.get("grid_blocks", 1)),
        block_size=int(payload.get("block_size", 32)),
        params={
            int(k): v for k, v in (payload.get("params") or {}).items()
        },
    )
    traits_payload = payload.get("traits") or {}
    if not isinstance(traits_payload, dict):
        raise ValueError("workload.traits must be an object")
    work_profile = payload.get("work_profile")
    if work_profile is not None:
        work_profile = [float(w) for w in work_profile]
    return Workload(
        launch=launch,
        iterations=int(payload.get("iterations", 1)),
        traits=MemoryTraits(**traits_payload),
        ilp=float(payload.get("ilp", 1.0)),
        max_events_per_warp=int(payload.get("max_events_per_warp", 6000)),
        work_profile=work_profile,
    )


def decode_binary(encoded: str) -> MultiVersionBinary:
    try:
        raw = base64.b64decode(encoded.encode("ascii"), validate=True)
    except (AttributeError, binascii.Error, UnicodeEncodeError):
        raise ValueError("binary is not valid base64") from None
    try:
        return MultiVersionBinary.from_bytes(raw)
    except (struct.error, IndexError, KeyError) as exc:
        # A truncated or garbled container raises low-level decode
        # errors; normalize them so the daemon answers bad-request
        # instead of internal.
        raise ValueError(f"binary is malformed: {type(exc).__name__}") from exc


class TuningDaemon:
    """The server: store in front, engine worker pool behind."""

    def __init__(
        self,
        engine: ExecutionEngine,
        store: TuningStore,
        config: DaemonConfig | None = None,
    ) -> None:
        self.engine = engine
        self.store = store
        self.config = config or DaemonConfig()
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.jobs),
            thread_name_prefix="orion-tune",
        )
        # Store calls fsync and contend for a cross-process file lock, so
        # they never run on the event-loop thread.  They get their own
        # single worker (the store serializes internally anyway) rather
        # than the tune pool, where a warm hit could queue behind a
        # multi-second cold tune.
        self._store_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="orion-store"
        )
        #: tuning key → in-flight tune future (single-flight dedup)
        self._inflight: dict[str, asyncio.Future] = {}
        #: distinct tune jobs queued or running (admission control)
        self._pending = 0
        #: open connection-handler tasks (drained on shutdown)
        self._conn_tasks: set[asyncio.Task] = set()
        # -- cluster state (all None/absent in single-daemon mode) -----
        self.cluster = self.config.cluster
        self._ring = self.cluster.hash_ring() if self.cluster else None
        self._replicator: Replicator | None = None
        self._sync_task: asyncio.Task | None = None
        #: origin node → (generation, last applied seq), replication lag
        self._replication_seen: dict[str, tuple[str | None, int]] = {}
        self.http: "object | None" = None
        self.http_port: int | None = None
        #: recent request summaries (``/debug/requests``, failure dumps)
        self.flight = FlightRecorder(self.config.flight_entries)
        # A --log-file gets this daemon its own logger (tests run many
        # daemons per process); otherwise share the $ORION_LOG one.
        self.log = (
            StructuredLogger(self.config.log_file)
            if self.config.log_file
            else get_logger()
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            path = Path(self.config.port_file)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(f"{self.port}\n", encoding="utf-8")
        if self.config.http_port is not None:
            from repro.service.http import HttpAdmin

            self.http = HttpAdmin(
                self, host=self.config.host, port=self.config.http_port
            )
            await self.http.start()
            self.http_port = self.http.port
        if self.cluster is not None:
            self._replicator = Replicator(
                self.cluster.node_id,
                self.cluster.peers,
                snapshot_ops=self._snapshot_ops,
                peer_timeout=self.cluster.peer_timeout,
                log=self.log,
            )
            self._replicator.start()
            # Pull-side catch-up: a (re)starting node asks each peer for
            # the records it should hold, off the serving path.
            self._sync_task = asyncio.get_running_loop().create_task(
                self._pull_sync()
            )
        self.log.info(
            "daemon_listening",
            host=self.config.host,
            port=self.port,
            http_port=self.http_port,
            node=self.cluster.node_id if self.cluster else None,
            arch=self.engine.arch.name,
            backend=self.engine.backend.name,
        )

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or a shutdown request).

        Shutdown *drains*: in-flight tune jobs get up to the request
        timeout to finish and publish, and their connection handlers
        get a short grace period to flush responses, before any
        executor is torn down — a winner computed mid-shutdown is never
        dropped unpublished.
        """
        if self._server is None:
            await self.start()
        async with self._server:
            await self._stop.wait()
            await self._drain()
        if self._sync_task is not None:
            self._sync_task.cancel()
            try:
                await self._sync_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self._replicator is not None:
            await self._replicator.stop()
        if self.http is not None:
            await self.http.close()
        self._pool.shutdown(wait=True)
        self._store_pool.shutdown(wait=True)
        self.engine.telemetry.flush()
        self.log.info("daemon_stopped", port=self.port)
        if self.config.log_file:
            self.log.close()

    async def _drain(self) -> None:
        """Wait (bounded) for in-flight tunes and their responses."""
        pending = [
            future for future in self._inflight.values() if not future.done()
        ]
        if pending:
            await asyncio.wait(pending, timeout=self.config.request_timeout)
        handlers = [task for task in self._conn_tasks if not task.done()]
        if handlers:
            # Enough for a completed job's response to hit the socket;
            # idle keep-alive connections are abandoned at the bound.
            await asyncio.wait(handlers, timeout=2.0)

    def stop(self) -> None:
        self._stop.set()

    async def run(self) -> None:
        await self.start()
        await self.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    payload = await protocol.read_frame(reader)
                except protocol.ProtocolError as exc:
                    # A framing failure is not a dispatched request:
                    # count it under its own outcome so a request can
                    # never be charged twice (once here, once by
                    # _dispatch for a later frame of this connection).
                    self._count("unknown", "bad-frame")
                    await self._respond(
                        writer,
                        protocol.error(protocol.CODE_BAD_REQUEST, str(exc)),
                    )
                    break  # framing is lost; the connection is unusable
                if payload is None:
                    break  # clean EOF
                response = await self._dispatch(payload)
                await self._respond(writer, response)
                if self._stop.is_set():
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away; nothing to answer
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(
        self, writer: asyncio.StreamWriter, response: dict
    ) -> None:
        try:
            await protocol.write_frame(writer, response)
        except (ConnectionError, OSError):
            pass  # client vanished between request and response

    async def _dispatch(self, payload: dict) -> dict:
        """Route one request frame; charge metrics *exactly once*.

        Every dispatched frame — good, malformed envelope, or worker
        failure — reaches the single ``_count`` call below with one
        (type, outcome) pair, and the latency histogram observes the
        same population.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        type_ = "unknown"
        trace_id, parent_span = protocol.trace_context(payload)
        if trace_id is None and self.engine.trace_path is not None:
            # This daemon records a trace: give even an untraced client
            # request an identity, so its spans can be found later.
            trace_id = new_trace_id()
        ctx = TraceContext(trace_id, parent_span) if trace_id else None
        try:
            type_ = protocol.validate_request(payload)
        except protocol.ProtocolError as exc:
            response = protocol.error(protocol.CODE_BAD_REQUEST, str(exc))
            outcome = "bad-request"
        else:
            span_labels = {"type": type_}
            if parent_span is not None:
                # The remote parent: the join key repro trace merge
                # uses to link this span under the sender's.
                span_labels["parent_span"] = parent_span
            with use_hub(self.engine.telemetry), use_trace(ctx), span(
                "daemon_request", **span_labels
            ):
                try:
                    response, outcome = await self._handle(type_, payload)
                except Exception as exc:  # noqa: BLE001 — daemon must survive
                    response = protocol.error(
                        protocol.CODE_INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    )
                    outcome = "internal-error"
        elapsed = loop.time() - start
        self._count(type_, outcome)
        _registry().histogram(
            "orion_daemon_request_seconds",
            "Daemon request latency by request type.",
            buckets=_LATENCY_BUCKETS,
        ).observe(elapsed, type=type_, exemplar=trace_id)
        self._record_flight(type_, outcome, elapsed, trace_id, payload, response)
        return response

    #: outcomes whose flight entry is worth dumping to the log
    _FAILURE_OUTCOMES = frozenset(
        ("timeout", "internal-error", "tune-failed", "forward-loop")
    )

    def _record_flight(
        self,
        type_: str,
        outcome: str,
        elapsed: float,
        trace_id: str | None,
        payload: dict,
        response: dict,
    ) -> None:
        """One flight-recorder entry per dispatched request.

        On a timeout or failure the entry — plus the recent ring tail —
        is also dumped to the structured log, so the moments leading up
        to a bad request survive even with no trace file configured.
        """
        hops = payload.get("hops")
        peer = response.get("node") if isinstance(response, dict) else None
        if self.cluster is not None and peer == self.cluster.node_id:
            peer = None  # answered locally; only name *other* nodes
        entry = self.flight.record(
            trace=trace_id,
            type=type_,
            outcome=outcome,
            ms=round(elapsed * 1000.0, 3),
            hops=hops if isinstance(hops, int) else None,
            peer=peer,
        )
        if outcome in self._FAILURE_OUTCOMES:
            self.log.error(
                "request_failed",
                trace=trace_id,
                type=type_,
                outcome=outcome,
                ms=entry["ms"],
                error=response.get("error"),
                recent=self.flight.tail(8),
            )

    async def _handle(
        self, type_: str, payload: dict, hops: int = 0
    ) -> tuple[dict, str]:
        if type_ == "ping":
            # Echo the negotiated version: a v1 client sees exactly the
            # v1 response bytes it always did.
            version = min(payload.get("v"), protocol.PROTOCOL_VERSION)
            return protocol.ok(version=version), "ok"
        if type_ == "stats":
            return await self._stats_response(), "ok"
        if type_ == "shutdown":
            self.stop()
            return protocol.ok(stopping=True), "ok"
        if type_ == "query":
            return await self._query(payload, hops)
        if type_ == "invalidate":
            return await self._invalidate(payload, hops)
        if type_ == "forward":
            return await self._forwarded(payload)
        if type_ == "replicate":
            return await self._replicate(payload)
        if type_ == "sync":
            return await self._sync(payload)
        return await self._tune(payload, hops)

    async def _store_call(self, fn, *args):
        """Run one blocking store operation off the event-loop thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._store_pool, fn, *args)

    async def _query(self, payload: dict, hops: int = 0) -> tuple[dict, str]:
        key = payload.get("key")
        if not isinstance(key, str):
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST, "query needs a key"
                ),
                "bad-request",
            )
        record = await self._store_call(self.store.peek, key)
        if record is not None:
            response = protocol.ok(found=True, record=record.to_payload())
            return self._stamp_node(response), "hit"
        # A local miss may be a misplaced key: when the client names the
        # kernel fingerprint, route the query to the ring owner.
        kernel = payload.get("kernel")
        if (
            self._ring is not None
            and isinstance(kernel, str)
            and kernel
        ):
            owner = self._ring.owner(kernel)
            if owner != self.cluster.node_id:
                forwarded = await self._forward_to(owner, payload, hops)
                if forwarded is not None:
                    return forwarded
        return self._stamp_node(protocol.ok(found=False, key=key)), "miss"

    async def _invalidate(
        self, payload: dict, hops: int = 0
    ) -> tuple[dict, str]:
        key = payload.get("key")
        if not isinstance(key, str):
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST, "invalidate needs a key"
                ),
                "bad-request",
            )
        removed = await self._store_call(self.store.invalidate, key)
        # Replicas and even non-replica nodes may hold a copy (the ring
        # may have been resized); a client-originated invalidation
        # (hops == 0) therefore broadcasts the del op to every peer.
        if self._replicator is not None and hops == 0:
            self._replicator.publish({"op": "del", "key": key})
        return self._stamp_node(protocol.ok(removed=removed)), "ok"

    # ------------------------------------------------------------------
    # The tune path
    # ------------------------------------------------------------------
    async def _tune(self, payload: dict, hops: int = 0) -> tuple[dict, str]:
        try:
            binary = decode_binary(payload.get("binary") or "")
            workload = workload_from_payload(payload.get("workload") or {})
        except (ValueError, KeyError, TypeError) as exc:
            return (
                protocol.error(protocol.CODE_BAD_REQUEST, str(exc)),
                "bad-request",
            )
        key = tuning_key(
            binary,
            workload,
            self.engine.arch.name,
            self.engine.backend.name,
            self.engine.cache_config.value,
            arch_fingerprint=self.engine.arch.fingerprint(),
        )
        record = await self._store_call(self.store.get, key)
        if record is not None:
            # Replica-local warm hit: replication put a copy here, so
            # even a non-owner answers with zero measurements and zero
            # extra network hops.
            return (
                self._stamp_node(
                    protocol.ok(
                        source="store", key=key, record=record.to_payload()
                    )
                ),
                "store-hit",
            )
        kernel_fp = None
        if self._ring is not None:
            # Cold tune for a key this node does not own: hand it to
            # the owner so the kernel's single-flight dedup stays on
            # one daemon.  An unreachable owner degrades to tuning
            # locally — a dead node never blackholes its key range.
            kernel_fp = kernel_fingerprint(binary)
            owner = self._ring.owner(kernel_fp)
            if owner != self.cluster.node_id:
                forwarded = await self._forward_to(owner, payload, hops)
                if forwarded is not None:
                    return forwarded
        future = self._inflight.get(key)
        joined = future is not None
        if not joined:
            if self._stop.is_set():
                return (
                    protocol.error(
                        protocol.CODE_SHUTTING_DOWN,
                        "daemon is draining; no new tune jobs admitted",
                    ),
                    "shutting-down",
                )
            if self._pending >= self.config.max_pending:
                return (
                    protocol.error(
                        protocol.CODE_QUEUE_FULL,
                        f"{self._pending} tune job(s) pending "
                        f"(bound {self.config.max_pending})",
                        retry_after=self.config.retry_after,
                    ),
                    "queue-full",
                )
            future = self._admit(key, binary, workload)
        try:
            record = await asyncio.wait_for(
                asyncio.shield(future), self.config.request_timeout
            )
        except asyncio.TimeoutError:
            return (
                protocol.error(
                    protocol.CODE_TIMEOUT,
                    f"tune exceeded {self.config.request_timeout}s "
                    "(the job continues; retry to join it)",
                ),
                "timeout",
            )
        except Exception as exc:  # noqa: BLE001 — worker failure, not ours
            return (
                protocol.error(
                    protocol.CODE_INTERNAL,
                    f"tuning failed: {type(exc).__name__}: {exc}",
                ),
                "tune-failed",
            )
        if not joined and self._replicator is not None:
            await self._replicate_publish(
                key, kernel_fp or kernel_fingerprint(binary)
            )
        return (
            self._stamp_node(
                protocol.ok(
                    source="deduped" if joined else "tuned",
                    key=key,
                    record=record.to_payload(),
                )
            ),
            "deduped" if joined else "tuned",
        )

    def _admit(
        self, key: str, binary: MultiVersionBinary, workload: Workload
    ) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        # contextvars do not cross run_in_executor: hand the ambient
        # trace context to the worker thread explicitly, so engine and
        # session spans of this cold tune join the request's trace.
        ctx = current_trace()
        future = loop.run_in_executor(
            self._pool, self._tune_sync, key, binary, workload, ctx
        )
        self._inflight[key] = future
        self._pending += 1
        self._set_queue_depth()

        def _done(_future: asyncio.Future) -> None:
            self._inflight.pop(key, None)
            self._pending -= 1
            self._set_queue_depth()

        future.add_done_callback(_done)
        return future

    def _tune_sync(
        self,
        key: str,
        binary: MultiVersionBinary,
        workload: Workload,
        ctx: TraceContext | None = None,
    ) -> TuningRecord:
        """One cold tune on a worker thread: run, publish, return."""
        from repro.service.fingerprint import kernel_fingerprint

        with use_trace(ctx) if ctx is not None else nullcontext():
            session = TuningSession(binary, workload)
            report = self.engine.run(session)
        record = record_from_report(
            key,
            kernel_fingerprint(binary),
            binary,
            report,
            self.engine.arch.name,
            self.engine.backend.name,
        )
        # When this store is attached to the engine, engine.run already
        # published the converged winner under this same key; writing it
        # again would double the log growth.  Only write what the engine
        # skipped (detached store, or a session that never converged).
        if self.store.peek(key) is None:
            self.store.put(record)
        return record

    # ------------------------------------------------------------------
    # Cluster plane (forwarding, replication, catch-up)
    # ------------------------------------------------------------------
    def _stamp_node(self, response: dict) -> dict:
        """Name the answering node on cluster responses.

        Single-daemon responses stay byte-identical to a non-clustered
        daemon's — no field is added unless ``--ring`` was given.
        """
        if self.cluster is not None:
            response["node"] = self.cluster.node_id
        return response

    async def _forward_to(
        self, owner: str, payload: dict, hops: int
    ) -> tuple[dict, str] | None:
        """Relay a client request to the ring owner.

        Returns the (response, outcome) to answer with, or ``None``
        when the owner is unreachable — the caller then serves the
        request locally instead of failing it.
        """
        if hops + 1 > self.cluster.max_hops:
            return (
                protocol.error(
                    protocol.CODE_FORWARD_LOOP,
                    f"forward exceeded {self.cluster.max_hops} hop(s) "
                    "without finding an owner; ring views disagree",
                ),
                "forward-loop",
            )
        host, port = node_address(owner)
        wire = protocol.request("forward", hops=hops + 1, request=payload)
        ctx = current_trace()
        if ctx is not None:
            # The hop inherits this request's trace; our own
            # daemon_request span (the innermost open span here) is the
            # remote parent the owner's span will point back at.
            active = current_span()
            wire = protocol.stamp_trace(
                wire,
                ctx.trace_id,
                active.span_id if active is not None else ctx.parent_span_id,
            )
        try:
            response = await protocol.async_round_trip(
                host,
                port,
                wire,
                timeout=self.config.request_timeout,
            )
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError) as exc:
            self._count_forward(owner, "peer-down")
            self.log.warn(
                "forward_peer_down", peer=owner, hops=hops + 1, error=str(exc)
            )
            return None
        self._count_forward(owner, "ok")
        return response, "forwarded"

    async def _forwarded(self, payload: dict) -> tuple[dict, str]:
        """Serve a ``forward`` frame from a peer daemon."""
        if self.cluster is None:
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST,
                    "this daemon is not in cluster mode",
                ),
                "bad-request",
            )
        hops = payload.get("hops")
        inner = payload.get("request")
        if not isinstance(hops, int) or hops < 1 or not isinstance(inner, dict):
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST,
                    "forward needs hops >= 1 and a request object",
                ),
                "bad-request",
            )
        if hops > self.cluster.max_hops:
            return (
                protocol.error(
                    protocol.CODE_FORWARD_LOOP,
                    f"forward traversed {hops} hop(s) on a "
                    f"{len(self.cluster.ring)}-node ring",
                ),
                "forward-loop",
            )
        try:
            inner_type = protocol.validate_request(inner)
        except protocol.ProtocolError as exc:
            return (
                protocol.error(protocol.CODE_BAD_REQUEST, str(exc)),
                "bad-request",
            )
        if inner_type not in protocol.FORWARDABLE_TYPES:
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST,
                    f"request type {inner_type!r} cannot be forwarded",
                ),
                "bad-request",
            )
        return await self._handle(inner_type, inner, hops=hops)

    async def _replicate(self, payload: dict) -> tuple[dict, str]:
        """Apply a peer's shipped op-log records to the local store."""
        if self.cluster is None:
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST,
                    "this daemon is not in cluster mode",
                ),
                "bad-request",
            )
        ops = payload.get("ops")
        if not isinstance(ops, list):
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST, "replicate needs an ops list"
                ),
                "bad-request",
            )
        applied = await self._apply_ops(ops)
        origin = payload.get("origin")
        if isinstance(origin, str):
            seqs = [
                op.get("seq")
                for op in ops
                if isinstance(op, dict) and isinstance(op.get("seq"), int)
            ]
            previous = self._replication_seen.get(origin, (None, 0))[1]
            self._replication_seen[origin] = (
                payload.get("generation"),
                max(seqs, default=previous),
            )
        return protocol.ok(applied=applied), "ok"

    async def _sync(self, payload: dict) -> tuple[dict, str]:
        """Answer a peer's pull-side catch-up with the ops it should hold."""
        if self.cluster is None:
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST,
                    "this daemon is not in cluster mode",
                ),
                "bad-request",
            )
        requester = payload.get("requester")
        if requester not in self.cluster.ring:
            return (
                protocol.error(
                    protocol.CODE_BAD_REQUEST,
                    f"sync requester {requester!r} is not a ring member",
                ),
                "bad-request",
            )
        generation, ops = await self._snapshot_ops()
        wanted = [op for op in ops if self._belongs_on(requester, op)]
        return protocol.ok(generation=generation, ops=wanted), "ok"

    def _belongs_on(self, node: str, op: dict) -> bool:
        """Should ``node`` hold the record this put op carries?

        Records whose kernel fingerprint is missing (legacy or foreign
        writes) are offered to everyone — over-replication is harmless,
        a silent gap is not.
        """
        record = op.get("record")
        kernel = record.get("kernel") if isinstance(record, dict) else None
        if not isinstance(kernel, str) or not kernel:
            return True
        return node in self._ring.replicas(kernel, self.cluster.replicas)

    async def _apply_ops(self, ops: list, only_missing: bool = False) -> int:
        """Apply put/del ops from a peer; returns how many landed.

        Malformed ops are skipped, not fatal — one bad record in a
        batch must not block the rest of the catch-up.  Applied ops are
        never re-published to the replicator (no replication loops).
        """
        applied = 0
        for op in ops:
            if not isinstance(op, dict):
                continue
            kind = op.get("op")
            key = op.get("key")
            if not isinstance(key, str) or not key:
                continue
            if kind == "put":
                record_payload = op.get("record")
                if not isinstance(record_payload, dict):
                    continue
                try:
                    record = TuningRecord.from_payload(record_payload)
                except (KeyError, TypeError, ValueError):
                    continue
                if only_missing:
                    existing = await self._store_call(self.store.peek, key)
                    if existing is not None:
                        continue
                await self._store_call(self.store.put, record)
                applied += 1
            elif kind == "del":
                await self._store_call(self.store.invalidate, key)
                applied += 1
        if applied:
            _registry().counter(
                "orion_cluster_replication_ops_total",
                "Replication ops by direction (shipped by origin, "
                "applied by replica).",
            ).inc(applied, direction="applied")
        return applied

    async def _replicate_publish(self, key: str, kernel_fp: str) -> None:
        """Enqueue a freshly tuned winner for its replica peers."""
        op = await self._store_call(self.store.op_for, key)
        if op is None:
            return  # evicted between publish and here; nothing to ship
        targets = [
            node
            for node in self._ring.replicas(kernel_fp, self.cluster.replicas)
            if node != self.cluster.node_id
        ]
        if targets:
            self._replicator.publish(op, peers=targets)

    async def _pull_sync(self) -> None:
        """Startup catch-up: ask each peer for this node's records."""
        for peer in self.cluster.peers:
            host, port = node_address(peer)
            for attempt in range(_SYNC_ATTEMPTS):
                try:
                    response = await protocol.async_round_trip(
                        host,
                        port,
                        protocol.request(
                            "sync", requester=self.cluster.node_id
                        ),
                        timeout=self.cluster.peer_timeout,
                    )
                except (
                    OSError,
                    protocol.ProtocolError,
                    asyncio.TimeoutError,
                ):
                    if attempt + 1 < _SYNC_ATTEMPTS:
                        await asyncio.sleep(_SYNC_RETRY_DELAY)
                    continue
                if response.get("ok") is True:
                    ops = response.get("ops")
                    if isinstance(ops, list):
                        # Only fill gaps: local records are never
                        # clobbered by a peer's possibly older copy.
                        await self._apply_ops(
                            [
                                op
                                for op in ops
                                if isinstance(op, dict)
                                and op.get("op") == "put"
                            ],
                            only_missing=True,
                        )
                break

    async def _snapshot_ops(self) -> tuple[str | None, list[dict]]:
        return await self._store_call(self.store.snapshot_ops)

    def _count_forward(self, peer: str, outcome: str) -> None:
        _registry().counter(
            "orion_cluster_forwards_total",
            "Requests forwarded to ring owners, by peer and outcome.",
        ).inc(peer=peer, outcome=outcome)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    async def _stats_response(self) -> dict:
        stats = await self._store_call(self.store.stats)
        daemon = {
            "pending": self._pending,
            "max_pending": self.config.max_pending,
            "inflight_keys": len(self._inflight),
            "jobs": self.config.jobs,
            "request_timeout": self.config.request_timeout,
            "arch": self.engine.arch.name,
            "backend": self.engine.backend.name,
        }
        response = protocol.ok(store=stats.to_payload(), daemon=daemon)
        if self.cluster is not None:
            response["cluster"] = self._cluster_stats()
        return response

    def _cluster_stats(self) -> dict:
        replicator = self._replicator
        return {
            "node_id": self.cluster.node_id,
            "ring": list(self.cluster.ring),
            "replicas": self.cluster.replicas,
            "vnodes": self.cluster.vnodes,
            "backlog": replicator.backlog() if replicator else {},
            "behind": replicator.behind() if replicator else [],
            "applied_from": {
                origin: {"generation": generation, "seq": seq}
                for origin, (generation, seq) in sorted(
                    self._replication_seen.items()
                )
            },
        }

    async def health(self) -> dict:
        """The ``/healthz`` document (see :mod:`repro.service.http`).

        ``ok`` is liveness *and* readiness: false while draining, so a
        load balancer stops routing to a daemon that is shutting down
        before its socket actually closes.
        """
        stats = await self._store_call(self.store.stats)
        body = {
            "ok": not self._stop.is_set(),
            "draining": self._stop.is_set(),
            "pending": self._pending,
            "max_pending": self.config.max_pending,
            "inflight": len(self._inflight),
            "store_entries": stats.entries,
            "arch": self.engine.arch.name,
            "backend": self.engine.backend.name,
        }
        if self.cluster is not None:
            body["cluster"] = self._cluster_stats()
        return body

    def _set_queue_depth(self) -> None:
        _registry().gauge(
            "orion_daemon_queue_depth",
            "Tune jobs currently queued or running in the daemon.",
        ).set(self._pending)

    def _count(self, type_: str, outcome: str) -> None:
        _registry().counter(
            "orion_daemon_requests_total",
            "Daemon requests by type and outcome.",
        ).inc(type=type_, outcome=outcome)


def _registry():
    from repro.obs.metrics import get_registry

    return get_registry()
