"""Optional-accelerator gate: the ``ORION_ACCEL`` switch.

The runtime keeps ``dependencies = []``: numpy and scipy are *optional*
accelerators (the ``accel`` extra), never requirements.  Every fast
path in the tree — the vectorized timing-simulator kernel
(:mod:`repro.sim.flat`), the LAPJV matcher
(:mod:`repro.regalloc.matching`) — asks this module whether its
accelerator is available, and the pure-Python implementation remains
the reference semantics either way: accelerated results are
byte-identical, only faster.

``ORION_ACCEL`` selects the backend:

* ``auto`` (default) — use an accelerator when its library imports;
* ``numpy`` — prefer accelerators; a missing library still degrades
  silently to the pure path (with a one-time
  ``orion_accel_fallback_total`` increment), never a crash;
* ``off`` — pure Python everywhere, the reference configuration.

Import failures are recorded once per process and library in the
``orion_accel_fallback_total`` counter so a fleet operator can see
that a node is running de-accelerated; per-seam usage is charged to
``orion_accel_selected_total`` by the call sites.
"""

from __future__ import annotations

import os
import threading

MODES = ("auto", "numpy", "off")

_lock = threading.Lock()
#: library name -> imported module or None (import failed); missing key
#: means the import has not been attempted yet
_imports: dict[str, object | None] = {}


def accel_mode() -> str:
    """The resolved ``ORION_ACCEL`` mode (unknown values mean ``auto``)."""
    raw = os.environ.get("ORION_ACCEL", "auto").strip().lower()
    return raw if raw in MODES else "auto"


def _import(library: str):
    """Import ``library`` once; on failure remember None and charge the
    one-time ``orion_accel_fallback_total`` fallback metric."""
    with _lock:
        if library in _imports:
            return _imports[library]
    try:
        if library == "numpy":
            import numpy as module
        elif library == "scipy.optimize":
            import scipy.optimize as module
        else:  # pragma: no cover - no other accelerators registered
            raise ImportError(library)
    except Exception:
        module = None
    with _lock:
        if library not in _imports:
            _imports[library] = module
            if module is None:
                _count_fallback(library)
        return _imports[library]


def _count_fallback(library: str) -> None:
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_accel_fallback_total",
        "Accelerator libraries that failed to import (pure path used).",
    ).inc(library=library)


def numpy_or_none():
    """The numpy module when accel is on and numpy imports, else None."""
    if accel_mode() == "off":
        return None
    return _import("numpy")


def scipy_optimize_or_none():
    """``scipy.optimize`` when accel is on and scipy imports, else None."""
    if accel_mode() == "off":
        return None
    return _import("scipy.optimize")


def count_selected(seam: str, impl: str) -> None:
    """Charge one accelerated-or-pure decision at ``seam`` to metrics."""
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_accel_selected_total",
        "Fast-path/pure-path decisions per accelerated seam.",
    ).inc(seam=seam, impl=impl)


def accel_info() -> dict:
    """Snapshot for bench reports: mode plus per-library availability."""
    return {
        "mode": accel_mode(),
        "numpy": _import("numpy") is not None
        if accel_mode() != "off"
        else None,
        "scipy": _import("scipy.optimize") is not None
        if accel_mode() != "off"
        else None,
    }
