"""Pluggable execution backends (the engine's measurement substrate).

The runtime engine never calls the simulator directly; it asks an
:class:`ExecutionBackend` to measure one *(kernel version, launch)*
pair and gets back a :class:`MeasurementResult`.  Decoupling policy
(the Fig. 9 tuner, the scheduler) from the execution substrate is the
Zorua-style split the ROADMAP asks for: every consumer of "how fast is
this version" — the dynamic tuner, the harness figures, the CLI — goes
through the same seam, so swapping the substrate never touches them.

Three backends ship:

* **timing** — the event-driven SM simulator
  (:func:`repro.sim.gpu.simulate_kernel`).  The reference substrate;
  every paper figure is generated through it.
* **analytical** — the Hong & Kim MWP/CWP closed-form model
  (:mod:`repro.sim.analytical`).  Orders of magnitude cheaper; gets the
  broad occupancy shape right and the fine structure wrong, which makes
  it a planning/screening backend, not a ground truth.
* **functional** — the interpreter (:func:`repro.sim.interp.run_kernel`).
  A correctness check, not a clock: ``cycles`` is a work proxy (threads
  launched, identical for every version of a kernel) and the result
  carries a checksum of global memory, so two versions of one kernel
  can be compared for semantic equivalence.

Backends are stateless and thread-safe: all inputs arrive in the
:class:`MeasurementRequest`, all outputs leave in the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.compiler.realize import KernelVersion
from repro.regalloc.strategy import get_strategy
from repro.sim.analytical import estimate_cycles, profile_kernel
from repro.sim.energy import gpu_power
from repro.sim.gpu import LaunchError, simulate_kernel
from repro.sim.interp import LaunchConfig, Value, run_kernel
from repro.sim.trace import MemoryTraits


@dataclass(frozen=True)
class MeasurementRequest:
    """Everything a backend needs to measure one launch of one version."""

    arch: GpuArchitecture
    version: KernelVersion
    launch: LaunchConfig
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE
    traits: MemoryTraits = field(default_factory=MemoryTraits)
    ilp: float = 1.0
    max_events_per_warp: int = 6000
    global_memory: dict[int, Value] | None = None
    #: pin the resident-warp count (occupancy sweeps); backends that
    #: have no notion of residency ignore it
    forced_warps: int | None = None


@dataclass
class MeasurementResult:
    """What a backend measured.  The common currency of the engine.

    ``stats`` holds backend-specific scalars (JSON-serialisable only,
    so results survive the measurement cache's disk tier).
    """

    backend: str
    cycles: int
    energy: float | None = None
    stats: dict[str, float | int | str] = field(default_factory=dict)
    #: set by the engine when the result came from the measurement
    #: cache rather than a backend invocation
    cached: bool = False

    def to_payload(self) -> dict:
        """JSON-safe form for the content-addressed measurement cache."""
        return {
            "backend": self.backend,
            "cycles": self.cycles,
            "energy": self.energy,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MeasurementResult":
        return cls(
            backend=payload["backend"],
            cycles=payload["cycles"],
            energy=payload["energy"],
            stats=dict(payload["stats"]),
            cached=True,
        )


@runtime_checkable
class ExecutionBackend(Protocol):
    """The substrate seam: measure one version under one launch."""

    name: str

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        ...


# ----------------------------------------------------------------------
def _record_invocation(name: str, result: MeasurementResult) -> None:
    """Charge one backend invocation (and its cycles) to the registry.

    A helper rather than a wrapping backend class so ``get_backend``
    keeps returning the concrete types callers isinstance-check.  Lazy
    import: :mod:`repro.obs` sits above the simulator in the import
    graph.
    """
    from repro.obs.metrics import get_registry

    registry = get_registry()
    registry.counter(
        "orion_backend_invocations_total",
        "Backend measurements actually executed (cache misses).",
    ).inc(backend=name)
    registry.counter(
        "orion_backend_cycles_total",
        "Simulated cycles accumulated per backend.",
    ).inc(result.cycles, backend=name)


def _resident_warps(request: MeasurementRequest) -> tuple[int, int, int]:
    """(resident, warps_per_block, total_warps) as the GPU model sees it."""
    arch = request.arch
    version = request.version
    launch = request.launch
    occ = get_strategy(version.strategy).occupancy(
        arch,
        launch.block_size,
        version.regs_per_thread,
        version.smem_per_block,
        request.cache_config,
    )
    if not occ.is_launchable:
        raise LaunchError(
            f"kernel {version.kernel_name} with {version.regs_per_thread} "
            f"regs and {version.smem_per_block}B shared does not launch "
            f"on {arch.name}"
        )
    warps_per_block = (launch.block_size + arch.warp_size - 1) // arch.warp_size
    total_warps = launch.grid_blocks * warps_per_block
    resident = (
        occ.active_warps if request.forced_warps is None else request.forced_warps
    )
    resident = max(warps_per_block, min(resident, total_warps))
    return resident, warps_per_block, total_warps


class TimingBackend:
    """The event-driven SM simulator — the reference substrate."""

    name = "timing"

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        version = request.version
        timing = simulate_kernel(
            request.arch,
            version.module,
            version.kernel_name,
            request.launch,
            regs_per_thread=version.regs_per_thread,
            smem_per_block=version.smem_per_block,
            cache_config=request.cache_config,
            traits=request.traits,
            ilp=request.ilp,
            max_events_per_warp=request.max_events_per_warp,
            global_memory=request.global_memory,
            forced_warps=request.forced_warps,
            strategy=version.strategy,
        )
        cycles = timing.total_cycles
        result = MeasurementResult(
            backend=self.name,
            cycles=cycles,
            energy=gpu_power(request.arch, timing.occupancy) * cycles,
            stats={
                "resident_warps": timing.resident_warps,
                "cycles_per_wave": timing.cycles_per_wave,
                "waves": timing.waves,
                "occupancy": timing.occupancy_fraction,
            },
        )
        _record_invocation(self.name, result)
        return result


class AnalyticalBackend:
    """The Hong & Kim MWP/CWP closed form — cheap, approximately right."""

    name = "analytical"

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        version = request.version
        resident, _, total_warps = _resident_warps(request)
        profile = profile_kernel(
            version.module, version.kernel_name, traits=request.traits
        )
        estimate = estimate_cycles(
            profile, request.arch, resident, total_warps, ilp=request.ilp
        )
        cycles = max(1, round(estimate.estimated_cycles))
        occ = get_strategy(version.strategy).occupancy(
            request.arch,
            request.launch.block_size,
            version.regs_per_thread,
            version.smem_per_block,
            request.cache_config,
        )
        result = MeasurementResult(
            backend=self.name,
            cycles=cycles,
            energy=gpu_power(request.arch, occ) * cycles,
            stats={
                "resident_warps": resident,
                "mwp": estimate.mwp,
                "cwp": estimate.cwp,
                "cycles_per_warp": estimate.cycles_per_warp,
            },
        )
        _record_invocation(self.name, result)
        return result


class FunctionalBackend:
    """The interpreter as a backend — a correctness check, not a clock.

    ``cycles`` counts launched threads (identical across versions of a
    kernel, so a tuner driven by this backend degenerates to its
    lowest-occupancy preference — by design).  The interesting output
    is ``stats``: the number of global words written and an
    order-insensitive checksum of the final global memory, which must
    agree between any two semantically equivalent versions.
    """

    name = "functional"

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        version = request.version
        memory = run_kernel(
            version.module,
            request.launch,
            kernel_name=version.kernel_name,
            global_memory=(
                dict(request.global_memory) if request.global_memory else None
            ),
        )
        checksum = 0
        for address, value in memory.items():
            if isinstance(value, float):
                value = math.floor(value * 4096)
            checksum ^= hash((address, value))
        result = MeasurementResult(
            backend=self.name,
            cycles=max(1, request.launch.total_threads),
            energy=None,
            stats={
                "global_words": len(memory),
                "checksum": f"{checksum & 0xFFFFFFFFFFFFFFFF:016x}",
            },
        )
        _record_invocation(self.name, result)
        return result


# ----------------------------------------------------------------------
BACKENDS: dict[str, type] = {
    TimingBackend.name: TimingBackend,
    AnalyticalBackend.name: AnalyticalBackend,
    FunctionalBackend.name: FunctionalBackend,
}


def get_backend(backend: str | ExecutionBackend) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]()
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r} "
                f"(choose from {', '.join(sorted(BACKENDS))})"
            ) from None
    if not isinstance(backend, ExecutionBackend):
        raise TypeError(f"not an execution backend: {backend!r}")
    return backend
