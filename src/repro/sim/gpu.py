"""Whole-GPU kernel timing: occupancy → resident warps → waves.

A kernel launch of ``G`` blocks runs as waves of
``active_blocks × num_SMs`` blocks; each wave behaves like one SM
executing its resident warps (SMs are homogeneous and blocks
independent), so

    total cycles = cycles(one wave on one SM) × number of waves.

The resident-warp count — the paper's occupancy knob — comes straight
from the occupancy calculator applied to the *binary's* register and
shared-memory usage, so different Orion-generated versions of the same
kernel genuinely run at different occupancies here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.occupancy import OccupancyResult, calculate_occupancy
from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.ir.function import Module
from repro.sim.interp import LaunchConfig, Value
from repro.sim.sm import SMResult, SMSimulator
from repro.sim.trace import MemoryTraits, generate_warp_traces


class LaunchError(RuntimeError):
    """Raised when a kernel configuration cannot run on the architecture."""


@dataclass
class KernelTiming:
    """Timing result of one simulated kernel launch."""

    arch_name: str
    occupancy: OccupancyResult
    resident_warps: int
    cycles_per_wave: int
    #: fractional: a trailing partial wave costs proportionally to its
    #: share of a full wave (avoids quantisation artifacts in sweeps)
    waves: float
    sm: SMResult

    @property
    def total_cycles(self) -> int:
        return max(1, round(self.cycles_per_wave * self.waves))

    @property
    def occupancy_fraction(self) -> float:
        return self.occupancy.occupancy


def simulate_kernel(
    arch: GpuArchitecture,
    module: Module,
    kernel_name: str,
    launch: LaunchConfig,
    regs_per_thread: int,
    smem_per_block: int = 0,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    traits: MemoryTraits | None = None,
    ilp: float = 1.0,
    max_events_per_warp: int = 6000,
    global_memory: dict[int, Value] | None = None,
    forced_warps: int | None = None,
) -> KernelTiming:
    """Simulate one kernel launch and return its timing.

    ``forced_warps`` overrides the calculated resident-warp count (used
    by sweeps that pin occupancy directly); it is still capped by the
    launch size.
    """
    occ = calculate_occupancy(
        arch, launch.block_size, regs_per_thread, smem_per_block, cache_config
    )
    if not occ.is_launchable:
        raise LaunchError(
            f"kernel {kernel_name} with {regs_per_thread} regs and "
            f"{smem_per_block}B shared does not launch on {arch.name}"
        )
    warps_per_block = (launch.block_size + arch.warp_size - 1) // arch.warp_size
    total_warps = launch.grid_blocks * warps_per_block
    resident = occ.active_warps if forced_warps is None else forced_warps
    resident = max(warps_per_block, min(resident, total_warps))

    traces = generate_warp_traces(
        module,
        kernel_name,
        launch,
        resident,
        traits=traits,
        max_events_per_warp=max_events_per_warp,
        global_memory=global_memory,
        line_bytes=arch.cache_line_bytes,
    )
    sim = SMSimulator(arch, cache_config, traits=traits, ilp=ilp)
    result = sim.run(traces, warps_per_block)

    blocks_per_wave = max(1, (resident // warps_per_block)) * arch.num_sms
    waves = max(1.0, launch.grid_blocks / blocks_per_wave)
    return KernelTiming(
        arch_name=arch.name,
        occupancy=occ,
        resident_warps=resident,
        cycles_per_wave=result.cycles,
        waves=waves,
        sm=result,
    )
