"""Whole-GPU kernel timing: occupancy → resident warps → waves.

A kernel launch of ``G`` blocks runs as waves of
``active_blocks × num_SMs`` blocks; each wave behaves like one SM
executing its resident warps (SMs are homogeneous and blocks
independent), so

    total cycles = cycles(one wave on one SM) × number of waves.

The resident-warp count — the paper's occupancy knob — comes straight
from the occupancy calculator applied to the *binary's* register and
shared-memory usage, so different Orion-generated versions of the same
kernel genuinely run at different occupancies here.
"""

from __future__ import annotations

import math
import weakref
from collections import OrderedDict
from dataclasses import dataclass

from repro import accel
from repro.arch.occupancy import OccupancyResult
from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.ir.function import Module
from repro.regalloc.strategy import AllocationStrategy, get_strategy
from repro.sim.interp import Interpreter, LaunchConfig, Value
from repro.sim.sm import SMResult, SMSimulator
from repro.sim.trace import (
    MemoryTraits,
    WarpTrace,
    _trace_warp,
    generate_warp_traces,
)


class LaunchError(RuntimeError):
    """Raised when a kernel configuration cannot run on the architecture."""


#: Per-module warp-trace cache for the accelerated path.  Warp *w*'s
#: trace is independent of how many warps are resident, so an occupancy
#: sweep over the same binary only ever traces each warp once and then
#: reuses (and incrementally extends) the cached list.  Keyed by module
#: identity (held weakly — a dead module invalidates its entry) plus
#: everything else trace generation depends on; bounded LRU so candidate
#: churn during tuning cannot grow it without limit.
_TRACE_CACHE: OrderedDict = OrderedDict()
_TRACE_CACHE_MAX = 8


def _cached_traces(
    module: Module,
    kernel_name: str,
    launch: LaunchConfig,
    resident: int,
    traits: MemoryTraits | None,
    max_events_per_warp: int,
    line_bytes: int,
) -> list[WarpTrace]:
    traits = traits or MemoryTraits()
    key = (
        id(module),
        kernel_name,
        launch.grid_blocks,
        launch.block_size,
        tuple(sorted(launch.params.items())),
        traits,
        max_events_per_warp,
        line_bytes,
    )
    entry = _TRACE_CACHE.get(key)
    if entry is not None and entry[0]() is not module:
        entry = None  # id() was recycled by a new module
    if entry is None:
        interp = Interpreter(
            module, max_steps=max(10 * max_events_per_warp, 100_000)
        )
        entry = (weakref.ref(module), interp, [])
        _TRACE_CACHE[key] = entry
        while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
            _TRACE_CACHE.popitem(last=False)
    _TRACE_CACHE.move_to_end(key)
    _, interp, traces = entry
    if len(traces) < resident:
        kernel = module.functions[kernel_name]
        warps_per_block = max(1, (launch.block_size + 31) // 32)
        for w in range(len(traces), resident):
            traces.append(
                _trace_warp(
                    interp,
                    kernel,
                    launch,
                    w,
                    warps_per_block,
                    traits,
                    max_events_per_warp,
                    None,
                    line_bytes,
                    collect_flat=True,
                )
            )
    return traces[:resident]


@dataclass
class KernelTiming:
    """Timing result of one simulated kernel launch."""

    arch_name: str
    occupancy: OccupancyResult
    resident_warps: int
    cycles_per_wave: int
    #: fractional: a trailing partial wave costs proportionally to its
    #: share of a full wave (avoids quantisation artifacts in sweeps)
    waves: float
    sm: SMResult

    @property
    def total_cycles(self) -> int:
        return max(1, round(self.cycles_per_wave * self.waves))

    @property
    def occupancy_fraction(self) -> float:
        return self.occupancy.occupancy


def simulate_kernel(
    arch: GpuArchitecture,
    module: Module,
    kernel_name: str,
    launch: LaunchConfig,
    regs_per_thread: int,
    smem_per_block: int = 0,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    traits: MemoryTraits | None = None,
    ilp: float = 1.0,
    max_events_per_warp: int = 6000,
    global_memory: dict[int, Value] | None = None,
    forced_warps: int | None = None,
    strategy: str | AllocationStrategy | None = None,
) -> KernelTiming:
    """Simulate one kernel launch and return its timing.

    ``forced_warps`` overrides the calculated resident-warp count (used
    by sweeps that pin occupancy directly); it is still capped by the
    launch size.  ``strategy`` (an allocation-strategy id; ``None`` =
    the reference ``local-spill``) controls the occupancy arithmetic
    and, for soft-limit strategies, adds the oversubscription swap cost
    to the SM model.
    """
    strat = get_strategy(strategy)
    occ = strat.occupancy(
        arch, launch.block_size, regs_per_thread, smem_per_block, cache_config
    )
    if not occ.is_launchable:
        raise LaunchError(
            f"kernel {kernel_name} with {regs_per_thread} regs and "
            f"{smem_per_block}B shared does not launch on {arch.name}"
        )
    warps_per_block = (launch.block_size + arch.warp_size - 1) // arch.warp_size
    total_warps = launch.grid_blocks * warps_per_block
    resident = occ.active_warps if forced_warps is None else forced_warps
    resident = max(warps_per_block, min(resident, total_warps))

    if global_memory is None and accel.accel_mode() != "off":
        traces = _cached_traces(
            module,
            kernel_name,
            launch,
            resident,
            traits,
            max_events_per_warp,
            arch.cache_line_bytes,
        )
    else:
        traces = generate_warp_traces(
            module,
            kernel_name,
            launch,
            resident,
            traits=traits,
            max_events_per_warp=max_events_per_warp,
            global_memory=global_memory,
            line_bytes=arch.cache_line_bytes,
        )
    swap_interval, swap_latency = strat.swap_model(
        arch, launch.block_size, regs_per_thread, smem_per_block, cache_config
    )
    sim = SMSimulator(
        arch,
        cache_config,
        traits=traits,
        ilp=ilp,
        swap_interval=swap_interval,
        swap_latency=swap_latency,
    )
    result = sim.run(traces, warps_per_block)

    blocks_per_wave = max(1, (resident // warps_per_block)) * arch.num_sms
    waves = max(1.0, launch.grid_blocks / blocks_per_wave)
    return KernelTiming(
        arch_name=arch.name,
        occupancy=occ,
        resident_warps=resident,
        cycles_per_wave=result.cycles,
        waves=waves,
        sm=result,
    )
