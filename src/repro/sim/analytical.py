"""An analytical occupancy–performance model (Hong & Kim style).

The paper positions Orion against analytical predictors: "The
analytical model [Hong & Kim, ISCA'09/'10] uses off-line profiled
information, including memory throughput and dynamic instruction count,
to estimate the performance of a GPU program ... it does not provide a
pro-active occupancy tuning solution."  This module implements that
class of model over *static* binary features, for two purposes:

* as a comparison point — tests check how well the closed-form model
  ranks occupancy levels against the event-driven simulator (it gets
  the broad shape right and the fine structure wrong, which is exactly
  why Orion tunes dynamically);
* as a cheap planning aid — the compiler could use it to order
  candidate versions without any simulation.

The model is MWP/CWP-shaped: each warp alternates between a compute
period and a memory period; the SM overlaps up to

    MWP = min(resident warps, memory latency / departure delay)

warps' memory periods.  Below saturation, runtime is latency-bound and
shrinks with occupancy; past it, bandwidth (departure delay) rules and
the curve flattens; spill traffic from the binary adds to both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GpuArchitecture
from repro.ir.cfg import CFG
from repro.ir.function import Module
from repro.isa.instructions import MemSpace
from repro.sim.trace import MemoryTraits, warp_lines


@dataclass(frozen=True)
class KernelProfile:
    """Static per-warp features extracted from a binary."""

    compute_instructions: float  # loop-weighted, per warp
    offchip_accesses: float  # global/param accesses per warp
    local_accesses: float  # spill traffic per warp
    shared_accesses: float
    transactions_per_access: float  # cache lines per warp access

    @property
    def total_memory_periods(self) -> float:
        return self.offchip_accesses + self.local_accesses


def profile_kernel(
    module: Module,
    kernel_name: str,
    traits: MemoryTraits | None = None,
    loop_weight: float = 8.0,
) -> KernelProfile:
    """Loop-weighted static instruction mix of a kernel's call tree."""
    traits = traits or MemoryTraits()
    compute = offchip = local = shared = 0.0
    sample_lines = len(
        warp_lines(0, MemSpace.GLOBAL, traits)
    )
    for fn in module.functions.values():
        cfg = CFG(fn)
        for label in cfg.rpo:
            weight = loop_weight ** cfg.loop_depth[label]
            for inst in fn.blocks[label].instructions:
                if inst.is_memory:
                    if inst.space in (MemSpace.GLOBAL, MemSpace.PARAM):
                        offchip += weight
                    elif inst.space is MemSpace.LOCAL:
                        local += weight
                    else:
                        shared += weight
                else:
                    compute += weight
    return KernelProfile(
        compute_instructions=compute,
        offchip_accesses=offchip,
        local_accesses=local,
        shared_accesses=shared,
        transactions_per_access=float(sample_lines),
    )


@dataclass(frozen=True)
class AnalyticalEstimate:
    """Closed-form cycle estimate for one occupancy level."""

    warps: int
    mwp: float  # memory warp parallelism actually achieved
    cwp: float  # computation warp parallelism
    cycles_per_warp: float
    estimated_cycles: float  # for a fixed total amount of work


def estimate_cycles(
    profile: KernelProfile,
    arch: GpuArchitecture,
    resident_warps: int,
    total_warps: int,
    ilp: float = 1.0,
) -> AnalyticalEstimate:
    """MWP/CWP estimate of total cycles for ``total_warps`` of work."""
    if resident_warps <= 0:
        raise ValueError("resident_warps must be positive")
    mem_latency = float(arch.dram_latency)
    departure = arch.dram_service_interval * max(
        1.0, profile.transactions_per_access
    )
    comp_cycles = (
        profile.compute_instructions * max(1.0, arch.alu_latency / ilp)
        + profile.shared_accesses * arch.shared_latency
        + profile.local_accesses * arch.l1_latency
    )
    mem_periods = max(profile.offchip_accesses, 1e-9)

    # Warp parallelism (Hong & Kim's MWP/CWP, simplified).
    mwp_peak = mem_latency / departure
    mwp = min(float(resident_warps), mwp_peak)
    comp_per_period = comp_cycles / mem_periods
    cwp = min(
        float(resident_warps), (comp_per_period + mem_latency) / max(comp_per_period, 1.0)
    )

    if mwp >= resident_warps and cwp >= resident_warps:
        # Latency-bound: not enough warps to cover memory latency.
        per_warp = comp_cycles + mem_periods * mem_latency
        total = per_warp * total_warps / resident_warps
    elif cwp >= mwp:
        # Bandwidth-bound: departures dominate.
        total = (
            mem_periods * departure * total_warps
            + comp_cycles * total_warps / resident_warps
        )
    else:
        # Compute-bound: the issue pipeline rules.
        total = comp_cycles * total_warps / max(1.0, arch.issue_width)
    per_warp = comp_cycles + mem_periods * mem_latency
    return AnalyticalEstimate(
        warps=resident_warps,
        mwp=mwp,
        cwp=cwp,
        cycles_per_warp=per_warp,
        estimated_cycles=total,
    )


def rank_occupancy_levels(
    profile: KernelProfile,
    arch: GpuArchitecture,
    levels: list[int],
    total_warps: int,
    ilp: float = 1.0,
) -> list[tuple[int, float]]:
    """(warps, estimated cycles) for each level, best first."""
    estimates = [
        (
            warps,
            estimate_cycles(profile, arch, warps, total_warps, ilp).estimated_cycles,
        )
        for warps in levels
    ]
    return sorted(estimates, key=lambda pair: pair[1])
