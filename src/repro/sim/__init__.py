"""Execution substrate: functional interpreter plus the timing/energy
simulator standing in for the paper's GTX680 and Tesla C2075."""

from repro.sim.analytical import (
    AnalyticalEstimate,
    KernelProfile,
    estimate_cycles,
    profile_kernel,
    rank_occupancy_levels,
)
from repro.sim.backend import (
    BACKENDS,
    AnalyticalBackend,
    ExecutionBackend,
    FunctionalBackend,
    MeasurementRequest,
    MeasurementResult,
    TimingBackend,
    get_backend,
)
from repro.sim.energy import EnergyReport, gpu_power, kernel_energy
from repro.sim.gpu import KernelTiming, LaunchError, simulate_kernel
from repro.sim.interp import InterpError, Interpreter, LaunchConfig, run_kernel
from repro.sim.memory import MemoryStats, MemorySubsystem, SetAssociativeCache
from repro.sim.sm import SMResult, SMSimulator
from repro.sim.trace import (
    MemoryTraits,
    TraceEvent,
    WarpTrace,
    generate_warp_traces,
    trace_summary,
    warp_lines,
)

__all__ = [
    "AnalyticalBackend",
    "AnalyticalEstimate",
    "BACKENDS",
    "EnergyReport",
    "ExecutionBackend",
    "FunctionalBackend",
    "KernelProfile",
    "MeasurementRequest",
    "MeasurementResult",
    "TimingBackend",
    "estimate_cycles",
    "get_backend",
    "profile_kernel",
    "rank_occupancy_levels",
    "InterpError",
    "Interpreter",
    "KernelTiming",
    "LaunchConfig",
    "LaunchError",
    "MemoryStats",
    "MemorySubsystem",
    "MemoryTraits",
    "SetAssociativeCache",
    "SMResult",
    "SMSimulator",
    "TraceEvent",
    "WarpTrace",
    "generate_warp_traces",
    "gpu_power",
    "kernel_energy",
    "run_kernel",
    "simulate_kernel",
    "trace_summary",
    "warp_lines",
]
