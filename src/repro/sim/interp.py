"""Functional interpreter for ORAS modules.

This is the correctness oracle of the reproduction: a kernel is executed
thread-by-thread (lock-stepped at barriers) over real register, shared,
local, and global state.  Running the same kernel before and after
Orion's allocation — and asserting identical global memory — proves that
colouring, spilling, shared-memory promotion, and the compressible
stack's save/restore protocol preserve semantics.

Two calling conventions are understood, detected per call site:

* **value ABI** (pre-allocation): ``CALL dst, f(a, b)`` runs the callee
  with a fresh register environment seeded with the arguments;
* **frame ABI** (post-allocation): a bare ``CALL f`` transfers control
  within the *same* flat physical register file; argument and result
  slots were materialised by the allocator's MOVs.

Values are Python ints/floats (a logical simulation, not a bit-accurate
one); memory is word-addressed and sparse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.function import Function, Module
from repro.isa.instructions import (
    CmpOp,
    Imm,
    Instruction,
    MemSpace,
    Opcode,
    Operand,
)
from repro.isa.registers import PhysReg, SpecialReg, VirtualReg

Value = int | float


class InterpError(RuntimeError):
    """Raised on runaway execution or malformed programs."""


@dataclass
class LaunchConfig:
    """Launch geometry plus kernel parameters (the ``param`` space)."""

    grid_blocks: int = 1
    block_size: int = 32
    params: dict[int, Value] = field(default_factory=dict)

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.block_size


class _ThreadState:
    """Registers and local memory of one thread."""

    __slots__ = ("regs", "local", "tid", "ctaid")

    def __init__(self, tid: int, ctaid: int) -> None:
        self.regs: dict[object, Value] = {}
        self.local: dict[int, Value] = {}
        self.tid = tid
        self.ctaid = ctaid


_BARRIER = object()

_CMP = {
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
}


class Interpreter:
    """Executes kernels of one module over explicit memory state."""

    def __init__(self, module: Module, max_steps: int = 2_000_000) -> None:
        module.validate()
        self.module = module
        self.max_steps = max_steps
        #: Optional callable ``(inst, state, address)`` invoked for every
        #: executed instruction (address is None for non-memory ops).
        #: Used by the trace generator; may raise to stop execution.
        self.observer = None

    # ------------------------------------------------------------------
    def run(
        self,
        kernel_name: str,
        launch: LaunchConfig,
        global_memory: dict[int, Value] | None = None,
    ) -> dict[int, Value]:
        """Execute a kernel launch; returns the final global memory."""
        kernel = self.module.functions[kernel_name]
        if not kernel.is_kernel:
            raise InterpError(f"{kernel_name} is not a kernel")
        memory = dict(global_memory or {})
        for block in range(launch.grid_blocks):
            self._run_block(kernel, launch, block, memory)
        return memory

    def _run_block(
        self,
        kernel: Function,
        launch: LaunchConfig,
        ctaid: int,
        memory: dict[int, Value],
    ) -> None:
        shared: dict[int, Value] = {}
        threads = []
        for tid in range(launch.block_size):
            state = _ThreadState(tid, ctaid)
            gen = self._run_function(
                kernel, state, launch, memory, shared, [0] * 0
            )
            threads.append(gen)

        # Lock-step at barriers: run every live thread to its next
        # barrier (or completion); repeat until all are done.
        live = list(threads)
        while live:
            still_running = []
            for gen in live:
                try:
                    token = next(gen)
                except StopIteration:
                    continue
                if token is not _BARRIER:
                    raise InterpError("unexpected yield from thread")
                still_running.append(gen)
            live = still_running

    # ------------------------------------------------------------------
    def _run_function(
        self,
        fn: Function,
        state: _ThreadState,
        launch: LaunchConfig,
        memory: dict[int, Value],
        shared: dict[int, Value],
        args: list[Value],
    ) -> Iterator[object]:
        """Generator executing ``fn``; yields at barriers, returns value."""
        for i, value in enumerate(args):
            state.regs[("v", i)] = value

        label = fn.entry.label
        steps = 0
        index = 0
        block = fn.blocks[label]
        return_value: Value = 0
        while True:
            if index >= len(block.instructions):
                raise InterpError(f"fell off block {label} in {fn.name}")
            inst = block.instructions[index]
            steps += 1
            if steps > self.max_steps:
                raise InterpError(
                    f"{fn.name} exceeded {self.max_steps} steps (infinite loop?)"
                )
            op = inst.opcode
            if self.observer is not None:
                address = (
                    self._effective_address(inst, state, launch)
                    if inst.is_memory
                    else None
                )
                self.observer(inst, state, address)

            if op is Opcode.BRA:
                label = inst.targets[0]
                block = fn.blocks[label]
                index = 0
                continue
            if op is Opcode.CBR:
                cond = self._read(inst.srcs[0], state, launch)
                label = inst.targets[0] if cond else inst.targets[1]
                block = fn.blocks[label]
                index = 0
                continue
            if op is Opcode.EXIT:
                return
            if op is Opcode.RET:
                if inst.srcs:
                    return_value = self._read(inst.srcs[0], state, launch)
                    state.regs[("ret",)] = return_value
                return
            if op is Opcode.BAR:
                yield _BARRIER
                index += 1
                continue
            if op is Opcode.CALL:
                callee = self.module.functions[inst.callee]
                if inst.srcs or inst.dst is not None:
                    # value ABI: fresh environment for the callee.
                    arg_values = [
                        self._read(s, state, launch) for s in inst.srcs
                    ]
                    sub = _ThreadState(state.tid, state.ctaid)
                    sub.local = state.local  # local memory is per-thread
                    yield from self._run_function(
                        callee, sub, launch, memory, shared, arg_values
                    )
                    if inst.dst is not None:
                        self._write(
                            inst.dst, sub.regs.get(("ret",), 0), state
                        )
                else:
                    # frame ABI: same flat register file.
                    yield from self._run_function(
                        callee, state, launch, memory, shared, []
                    )
                index += 1
                continue
            if op is Opcode.PHI:
                raise InterpError("cannot interpret SSA form; destruct first")

            self._execute_simple(inst, state, launch, memory, shared)
            index += 1

    # ------------------------------------------------------------------
    def _execute_simple(
        self,
        inst: Instruction,
        state: _ThreadState,
        launch: LaunchConfig,
        memory: dict[int, Value],
        shared: dict[int, Value],
    ) -> None:
        op = inst.opcode
        read = lambda i: self._read(inst.srcs[i], state, launch)

        if op is Opcode.S2R:
            self._write(inst.dst, self._special(inst.special, state, launch), state)
            return
        if op is Opcode.MOV:
            self._write(inst.dst, read(0), state)
            return
        if op is Opcode.SELP:
            self._write(inst.dst, read(1) if read(0) else read(2), state)
            return
        if op is Opcode.I2F:
            self._write(inst.dst, float(read(0)), state)
            return
        if op is Opcode.F2I:
            self._write(inst.dst, int(read(0)), state)
            return
        if op in (Opcode.LD, Opcode.ST):
            self._memory_op(inst, state, launch, memory, shared)
            return
        if op in (Opcode.ISET, Opcode.FSET):
            self._write(inst.dst, 1 if _CMP[inst.cmp](read(0), read(1)) else 0, state)
            return
        if op is Opcode.NOP:
            return

        a = read(0)
        if op is Opcode.FRCP:
            self._write(inst.dst, 1.0 / a if a else math.inf, state)
            return
        if op is Opcode.FSQRT:
            self._write(inst.dst, math.sqrt(a) if a >= 0 else math.nan, state)
            return
        if op is Opcode.FEXP:
            self._write(inst.dst, math.exp(min(a, 700.0)), state)
            return
        if op is Opcode.FLOG:
            self._write(inst.dst, math.log(a) if a > 0 else -math.inf, state)
            return
        if op is Opcode.FSIN:
            self._write(inst.dst, math.sin(a), state)
            return

        b = read(1)
        result: Value
        if op is Opcode.IADD:
            result = a + b
        elif op is Opcode.ISUB:
            result = a - b
        elif op is Opcode.IMUL:
            result = a * b
        elif op is Opcode.IMIN:
            result = min(a, b)
        elif op is Opcode.IMAX:
            result = max(a, b)
        elif op is Opcode.AND:
            result = int(a) & int(b)
        elif op is Opcode.OR:
            result = int(a) | int(b)
        elif op is Opcode.XOR:
            result = int(a) ^ int(b)
        elif op is Opcode.SHL:
            result = int(a) << int(b)
        elif op is Opcode.SHR:
            result = int(a) >> int(b)
        elif op is Opcode.FADD:
            result = a + b
        elif op is Opcode.FSUB:
            result = a - b
        elif op is Opcode.FMUL:
            result = a * b
        elif op is Opcode.FMIN:
            result = min(a, b)
        elif op is Opcode.FMAX:
            result = max(a, b)
        elif op is Opcode.FDIV:
            result = a / b if b else math.inf
        elif op is Opcode.IMAD:
            result = a * b + read(2)
        elif op is Opcode.FFMA:
            result = a * b + read(2)
        else:
            raise InterpError(f"unimplemented opcode {op}")
        self._write(inst.dst, result, state)

    # ------------------------------------------------------------------
    def _memory_op(
        self,
        inst: Instruction,
        state: _ThreadState,
        launch: LaunchConfig,
        memory: dict[int, Value],
        shared: dict[int, Value],
    ) -> None:
        address = self._effective_address(inst, state, launch)
        space = inst.space
        if space is MemSpace.PARAM:
            if inst.opcode is Opcode.ST:
                raise InterpError("param space is read-only")
            self._write(inst.dst, launch.params.get(address, 0), state)
            return
        if space is MemSpace.GLOBAL:
            target = memory
        elif space is MemSpace.SHARED:
            target = shared
        elif space is MemSpace.LOCAL:
            target = state.local
        else:
            raise InterpError(f"bad memory space {space}")

        if inst.opcode is Opcode.LD:
            self._write(inst.dst, target.get(address, 0), state)
        else:
            target[address] = self._read(inst.srcs[0], state, launch)

    def _effective_address(
        self, inst: Instruction, state: _ThreadState, launch: LaunchConfig
    ) -> int:
        if inst.opcode is Opcode.LD:
            base = inst.srcs[0] if inst.srcs else None
        else:
            base = inst.srcs[1] if len(inst.srcs) > 1 else None
        address = inst.offset
        if base is not None:
            address += int(self._read(base, state, launch))
        return address

    # ------------------------------------------------------------------
    def _read(
        self, op: Operand, state: _ThreadState, launch: LaunchConfig
    ) -> Value:
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, VirtualReg):
            return state.regs.get(("v", op.index), 0)
        if isinstance(op, PhysReg):
            return state.regs.get(("r", op.index), 0)
        if isinstance(op, SpecialReg):
            return self._special(op, state, launch)
        raise InterpError(f"cannot read operand {op!r}")

    def _write(self, dst: object, value: Value, state: _ThreadState) -> None:
        if isinstance(dst, VirtualReg):
            state.regs[("v", dst.index)] = value
        elif isinstance(dst, PhysReg):
            state.regs[("r", dst.index)] = value
        else:
            raise InterpError(f"cannot write operand {dst!r}")

    def _special(
        self, reg: SpecialReg, state: _ThreadState, launch: LaunchConfig
    ) -> int:
        if reg is SpecialReg.TID:
            return state.tid
        if reg is SpecialReg.CTAID:
            return state.ctaid
        if reg is SpecialReg.NTID:
            return launch.block_size
        if reg is SpecialReg.NCTAID:
            return launch.grid_blocks
        if reg is SpecialReg.LANEID:
            return state.tid % 32
        if reg is SpecialReg.WARPID:
            return state.tid // 32
        raise InterpError(f"unknown special register {reg}")


def run_kernel(
    module: Module,
    launch: LaunchConfig,
    kernel_name: str | None = None,
    global_memory: dict[int, Value] | None = None,
) -> dict[int, Value]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    name = kernel_name or module.kernel().name
    return Interpreter(module).run(name, launch, global_memory)
