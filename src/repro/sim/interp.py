"""Functional interpreter for ORAS modules.

This is the correctness oracle of the reproduction: a kernel is executed
thread-by-thread (lock-stepped at barriers) over real register, shared,
local, and global state.  Running the same kernel before and after
Orion's allocation — and asserting identical global memory — proves that
colouring, spilling, shared-memory promotion, and the compressible
stack's save/restore protocol preserve semantics.

Two calling conventions are understood, detected per call site:

* **value ABI** (pre-allocation): ``CALL dst, f(a, b)`` runs the callee
  with a fresh register environment seeded with the arguments;
* **frame ABI** (post-allocation): a bare ``CALL f`` transfers control
  within the *same* flat physical register file; argument and result
  slots were materialised by the allocator's MOVs.

Values are Python ints/floats (a logical simulation, not a bit-accurate
one); memory is word-addressed and sparse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.function import Function, Module
from repro.isa.instructions import (
    CmpOp,
    Imm,
    Instruction,
    MemSpace,
    Opcode,
    Operand,
)
from repro.isa.registers import PhysReg, SpecialReg, VirtualReg

Value = int | float


class InterpError(RuntimeError):
    """Raised on runaway execution or malformed programs."""


@dataclass
class LaunchConfig:
    """Launch geometry plus kernel parameters (the ``param`` space)."""

    grid_blocks: int = 1
    block_size: int = 32
    params: dict[int, Value] = field(default_factory=dict)

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.block_size


class _ThreadState:
    """Registers and local memory of one thread."""

    # Virtual and physical registers live in separate int-keyed dicts
    # (the namespaces cannot collide), which avoids building and hashing
    # a key tuple on every operand access in the hot loop.
    __slots__ = ("vregs", "pregs", "ret", "local", "tid", "ctaid")

    def __init__(self, tid: int, ctaid: int) -> None:
        self.vregs: dict[int, Value] = {}
        self.pregs: dict[int, Value] = {}
        self.ret: Value = 0
        self.local: dict[int, Value] = {}
        self.tid = tid
        self.ctaid = ctaid


_BARRIER = object()

_CMP = {
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
}


class Interpreter:
    """Executes kernels of one module over explicit memory state."""

    def __init__(self, module: Module, max_steps: int = 2_000_000) -> None:
        module.validate()
        self.module = module
        self.max_steps = max_steps
        #: Optional callable ``(inst, state, address)`` invoked for every
        #: executed instruction (address is None for non-memory ops).
        #: Used by the trace generator; may raise to stop execution.
        self.observer = None
        #: Address already computed for the observer of the instruction
        #: currently executing; consumed by ``_memory_op`` so memory ops
        #: do not resolve their effective address twice while tracing.
        self._pending_addr: int | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        kernel_name: str,
        launch: LaunchConfig,
        global_memory: dict[int, Value] | None = None,
    ) -> dict[int, Value]:
        """Execute a kernel launch; returns the final global memory."""
        kernel = self.module.functions[kernel_name]
        if not kernel.is_kernel:
            raise InterpError(f"{kernel_name} is not a kernel")
        memory = dict(global_memory or {})
        for block in range(launch.grid_blocks):
            self._run_block(kernel, launch, block, memory)
        return memory

    def _run_block(
        self,
        kernel: Function,
        launch: LaunchConfig,
        ctaid: int,
        memory: dict[int, Value],
    ) -> None:
        shared: dict[int, Value] = {}
        threads = []
        for tid in range(launch.block_size):
            state = _ThreadState(tid, ctaid)
            gen = self._run_function(
                kernel, state, launch, memory, shared, [0] * 0
            )
            threads.append(gen)

        # Lock-step at barriers: run every live thread to its next
        # barrier (or completion); repeat until all are done.
        live = list(threads)
        while live:
            still_running = []
            for gen in live:
                try:
                    token = next(gen)
                except StopIteration:
                    continue
                if token is not _BARRIER:
                    raise InterpError("unexpected yield from thread")
                still_running.append(gen)
            live = still_running

    # ------------------------------------------------------------------
    def _run_function(
        self,
        fn: Function,
        state: _ThreadState,
        launch: LaunchConfig,
        memory: dict[int, Value],
        shared: dict[int, Value],
        args: list[Value],
    ) -> Iterator[object]:
        """Generator executing ``fn``; yields at barriers, returns value."""
        for i, value in enumerate(args):
            state.vregs[i] = value

        label = fn.entry.label
        steps = 0
        index = 0
        block = fn.blocks[label]
        instructions = block.instructions
        return_value: Value = 0
        max_steps = self.max_steps
        # The observer is fixed for the lifetime of one run (set before
        # the generator starts, cleared only after it finishes), so it
        # can be read once instead of per executed instruction.
        observer = self.observer
        while True:
            if index >= len(instructions):
                raise InterpError(f"fell off block {label} in {fn.name}")
            inst = instructions[index]
            steps += 1
            if steps > max_steps:
                raise InterpError(
                    f"{fn.name} exceeded {self.max_steps} steps (infinite loop?)"
                )
            # Per-instruction execution plan (kind code, handler, memory
            # flag), cached on the instruction object: instructions are
            # shared across all warps/threads of a module, so the opcode
            # ladder and dispatch-dict probe run once per instruction
            # instead of once per executed step.
            plan = inst._exec_plan
            if plan is None:
                plan = inst._exec_plan = _build_plan(inst)
            kind = plan[0]
            if observer is not None:
                if plan[2]:  # memory op: observer sees the address
                    address = self._effective_address(inst, state, launch)
                    observer(inst, state, address)
                    self._pending_addr = address
                else:
                    observer(inst, state, None)

            if kind == _K_SIMPLE:
                plan[1](self, inst, state, launch, memory, shared)
                index += 1
                continue
            if kind == _K_BRA:
                label = inst.targets[0]
                block = fn.blocks[label]
                instructions = block.instructions
                index = 0
                continue
            if kind == _K_CBR:
                cond = self._read(inst.srcs[0], state, launch)
                label = inst.targets[0] if cond else inst.targets[1]
                block = fn.blocks[label]
                instructions = block.instructions
                index = 0
                continue
            if kind == _K_EXIT:
                return
            if kind == _K_RET:
                if inst.srcs:
                    return_value = self._read(inst.srcs[0], state, launch)
                    state.ret = return_value
                return
            if kind == _K_BAR:
                yield _BARRIER
                index += 1
                continue
            if kind == _K_CALL:
                callee = self.module.functions[inst.callee]
                if inst.srcs or inst.dst is not None:
                    # value ABI: fresh environment for the callee.
                    arg_values = [
                        self._read(s, state, launch) for s in inst.srcs
                    ]
                    sub = _ThreadState(state.tid, state.ctaid)
                    sub.local = state.local  # local memory is per-thread
                    yield from self._run_function(
                        callee, sub, launch, memory, shared, arg_values
                    )
                    if inst.dst is not None:
                        self._write(inst.dst, sub.ret, state)
                else:
                    # frame ABI: same flat register file.
                    yield from self._run_function(
                        callee, state, launch, memory, shared, []
                    )
                index += 1
                continue
            raise InterpError("cannot interpret SSA form; destruct first")

    # ------------------------------------------------------------------
    def _execute_simple(
        self,
        inst: Instruction,
        state: _ThreadState,
        launch: LaunchConfig,
        memory: dict[int, Value],
        shared: dict[int, Value],
    ) -> None:
        handler = _DISPATCH.get(inst.opcode)
        if handler is None:
            raise InterpError(f"unimplemented opcode {inst.opcode}")
        handler(self, inst, state, launch, memory, shared)

    # ------------------------------------------------------------------
    def _memory_op(
        self,
        inst: Instruction,
        state: _ThreadState,
        launch: LaunchConfig,
        memory: dict[int, Value],
        shared: dict[int, Value],
    ) -> None:
        address = self._pending_addr
        if address is None:
            address = self._effective_address(inst, state, launch)
        else:
            self._pending_addr = None
        space = inst.space
        if space is MemSpace.PARAM:
            if inst.opcode is Opcode.ST:
                raise InterpError("param space is read-only")
            self._write(inst.dst, launch.params.get(address, 0), state)
            return
        if space is MemSpace.GLOBAL:
            target = memory
        elif space is MemSpace.SHARED:
            target = shared
        elif space is MemSpace.LOCAL:
            target = state.local
        else:
            raise InterpError(f"bad memory space {space}")

        if inst.opcode is Opcode.LD:
            self._write(inst.dst, target.get(address, 0), state)
        else:
            target[address] = self._read(inst.srcs[0], state, launch)

    def _effective_address(
        self, inst: Instruction, state: _ThreadState, launch: LaunchConfig
    ) -> int:
        if inst.opcode is Opcode.LD:
            base = inst.srcs[0] if inst.srcs else None
        else:
            base = inst.srcs[1] if len(inst.srcs) > 1 else None
        address = inst.offset
        if base is not None:
            address += int(self._read(base, state, launch))
        return address

    # ------------------------------------------------------------------
    def _read(
        self, op: Operand, state: _ThreadState, launch: LaunchConfig
    ) -> Value:
        # PhysReg first: the timing pipeline traces post-allocation
        # binaries, where almost every operand is physical.
        if isinstance(op, PhysReg):
            return state.pregs.get(op.index, 0)
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, VirtualReg):
            return state.vregs.get(op.index, 0)
        if isinstance(op, SpecialReg):
            return self._special(op, state, launch)
        raise InterpError(f"cannot read operand {op!r}")

    def _write(self, dst: object, value: Value, state: _ThreadState) -> None:
        if isinstance(dst, VirtualReg):
            state.vregs[dst.index] = value
        elif isinstance(dst, PhysReg):
            state.pregs[dst.index] = value
        else:
            raise InterpError(f"cannot write operand {dst!r}")

    def _special(
        self, reg: SpecialReg, state: _ThreadState, launch: LaunchConfig
    ) -> int:
        if reg is SpecialReg.TID:
            return state.tid
        if reg is SpecialReg.CTAID:
            return state.ctaid
        if reg is SpecialReg.NTID:
            return launch.block_size
        if reg is SpecialReg.NCTAID:
            return launch.grid_blocks
        if reg is SpecialReg.LANEID:
            return state.tid % 32
        if reg is SpecialReg.WARPID:
            return state.tid // 32
        raise InterpError(f"unknown special register {reg}")


# ----------------------------------------------------------------------
# Dispatch table for straight-line opcodes (control flow stays in
# ``_run_function``).  One dict probe per instruction replaces the long
# if/elif chain the hot loop used to walk for every late-listed opcode.


# The ALU handler factories inline the common operand paths (physical
# register, immediate, virtual register — exact final classes, so the
# ``type() is`` probes equal the isinstance ladder) and fall back to the
# full ``_read``/``_write`` for special registers and error reporting.


def _unary(fn):
    def handler(interp, inst, state, launch, memory, shared):
        op = inst.srcs[0]
        t = type(op)
        if t is PhysReg:
            a = state.pregs.get(op.index, 0)
        elif t is Imm:
            a = op.value
        elif t is VirtualReg:
            a = state.vregs.get(op.index, 0)
        else:
            a = interp._read(op, state, launch)
        value = fn(a)
        dst = inst.dst
        if type(dst) is PhysReg:
            state.pregs[dst.index] = value
        elif type(dst) is VirtualReg:
            state.vregs[dst.index] = value
        else:
            interp._write(dst, value, state)

    return handler


def _binary(fn):
    def handler(interp, inst, state, launch, memory, shared):
        srcs = inst.srcs
        op = srcs[0]
        t = type(op)
        if t is PhysReg:
            a = state.pregs.get(op.index, 0)
        elif t is Imm:
            a = op.value
        elif t is VirtualReg:
            a = state.vregs.get(op.index, 0)
        else:
            a = interp._read(op, state, launch)
        op = srcs[1]
        t = type(op)
        if t is PhysReg:
            b = state.pregs.get(op.index, 0)
        elif t is Imm:
            b = op.value
        elif t is VirtualReg:
            b = state.vregs.get(op.index, 0)
        else:
            b = interp._read(op, state, launch)
        value = fn(a, b)
        dst = inst.dst
        if type(dst) is PhysReg:
            state.pregs[dst.index] = value
        elif type(dst) is VirtualReg:
            state.vregs[dst.index] = value
        else:
            interp._write(dst, value, state)

    return handler


def _ternary(fn):
    def handler(interp, inst, state, launch, memory, shared):
        srcs = inst.srcs
        op = srcs[0]
        t = type(op)
        if t is PhysReg:
            a = state.pregs.get(op.index, 0)
        elif t is Imm:
            a = op.value
        elif t is VirtualReg:
            a = state.vregs.get(op.index, 0)
        else:
            a = interp._read(op, state, launch)
        op = srcs[1]
        t = type(op)
        if t is PhysReg:
            b = state.pregs.get(op.index, 0)
        elif t is Imm:
            b = op.value
        elif t is VirtualReg:
            b = state.vregs.get(op.index, 0)
        else:
            b = interp._read(op, state, launch)
        op = srcs[2]
        t = type(op)
        if t is PhysReg:
            c = state.pregs.get(op.index, 0)
        elif t is Imm:
            c = op.value
        elif t is VirtualReg:
            c = state.vregs.get(op.index, 0)
        else:
            c = interp._read(op, state, launch)
        value = fn(a, b, c)
        dst = inst.dst
        if type(dst) is PhysReg:
            state.pregs[dst.index] = value
        elif type(dst) is VirtualReg:
            state.vregs[dst.index] = value
        else:
            interp._write(dst, value, state)

    return handler


def _op_s2r(interp, inst, state, launch, memory, shared):
    interp._write(inst.dst, interp._special(inst.special, state, launch), state)


def _op_selp(interp, inst, state, launch, memory, shared):
    pick = 1 if interp._read(inst.srcs[0], state, launch) else 2
    interp._write(inst.dst, interp._read(inst.srcs[pick], state, launch), state)


def _op_set(interp, inst, state, launch, memory, shared):
    a = interp._read(inst.srcs[0], state, launch)
    b = interp._read(inst.srcs[1], state, launch)
    interp._write(inst.dst, 1 if _CMP[inst.cmp](a, b) else 0, state)


def _op_nop(interp, inst, state, launch, memory, shared):
    return


_DISPATCH = {
    Opcode.S2R: _op_s2r,
    Opcode.MOV: _unary(lambda a: a),
    Opcode.SELP: _op_selp,
    Opcode.I2F: _unary(float),
    Opcode.F2I: _unary(int),
    # _memory_op's signature matches the handler convention, so LD/ST
    # dispatch straight to it with no wrapper frame.
    Opcode.LD: Interpreter._memory_op,
    Opcode.ST: Interpreter._memory_op,
    Opcode.ISET: _op_set,
    Opcode.FSET: _op_set,
    Opcode.NOP: _op_nop,
    Opcode.FRCP: _unary(lambda a: 1.0 / a if a else math.inf),
    Opcode.FSQRT: _unary(lambda a: math.sqrt(a) if a >= 0 else math.nan),
    Opcode.FEXP: _unary(lambda a: math.exp(min(a, 700.0))),
    Opcode.FLOG: _unary(lambda a: math.log(a) if a > 0 else -math.inf),
    Opcode.FSIN: _unary(math.sin),
    Opcode.IADD: _binary(lambda a, b: a + b),
    Opcode.ISUB: _binary(lambda a, b: a - b),
    Opcode.IMUL: _binary(lambda a, b: a * b),
    Opcode.IMIN: _binary(min),
    Opcode.IMAX: _binary(max),
    Opcode.AND: _binary(lambda a, b: int(a) & int(b)),
    Opcode.OR: _binary(lambda a, b: int(a) | int(b)),
    Opcode.XOR: _binary(lambda a, b: int(a) ^ int(b)),
    Opcode.SHL: _binary(lambda a, b: int(a) << int(b)),
    Opcode.SHR: _binary(lambda a, b: int(a) >> int(b)),
    Opcode.FADD: _binary(lambda a, b: a + b),
    Opcode.FSUB: _binary(lambda a, b: a - b),
    Opcode.FMUL: _binary(lambda a, b: a * b),
    Opcode.FMIN: _binary(min),
    Opcode.FMAX: _binary(max),
    Opcode.FDIV: _binary(lambda a, b: a / b if b else math.inf),
    Opcode.IMAD: _ternary(lambda a, b, c: a * b + c),
    Opcode.FFMA: _ternary(lambda a, b, c: a * b + c),
}


# Kind codes for the per-instruction execution plan cached on
# ``Instruction._exec_plan``.  Control-flow opcodes keep their inline
# handling in ``_run_function`` (they touch the loop's locals); straight
# -line opcodes carry their `_DISPATCH` handler in the plan so the hot
# loop calls it without any dict probe.
_K_SIMPLE, _K_BRA, _K_CBR, _K_EXIT, _K_RET, _K_BAR, _K_CALL, _K_PHI = range(8)

_KIND_BY_OPCODE = {
    Opcode.BRA: _K_BRA,
    Opcode.CBR: _K_CBR,
    Opcode.EXIT: _K_EXIT,
    Opcode.RET: _K_RET,
    Opcode.BAR: _K_BAR,
    Opcode.CALL: _K_CALL,
    Opcode.PHI: _K_PHI,
}


def _op_unimplemented(interp, inst, state, launch, memory, shared):
    raise InterpError(f"unimplemented opcode {inst.opcode}")


def _build_plan(inst: Instruction) -> tuple:
    """``(kind, handler, is_memory)`` for one instruction."""
    kind = _KIND_BY_OPCODE.get(inst.opcode, _K_SIMPLE)
    handler = None
    if kind == _K_SIMPLE:
        handler = _DISPATCH.get(inst.opcode, _op_unimplemented)
    return (kind, handler, inst.is_memory)


def run_kernel(
    module: Module,
    launch: LaunchConfig,
    kernel_name: str | None = None,
    global_memory: dict[int, Value] | None = None,
) -> dict[int, Value]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    name = kernel_name or module.kernel().name
    return Interpreter(module).run(name, launch, global_memory)
