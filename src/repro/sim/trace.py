"""Per-warp instruction/address trace generation.

The timing simulator consumes traces, not IR: for each resident warp we
execute one *representative lane* (lane 0) through the real kernel
binary with the functional interpreter and record every instruction —
opcode class, memory space, and the set of cache lines the full warp
would touch.  The other 31 lanes' addresses are derived from the
representative address via the benchmark's *lane stride* (4 bytes =
perfectly coalesced, one or two 128B transactions; 128+ bytes = one
transaction per lane, the paper's irregular-access pathology).

Because the traces come from the actual allocated binaries, every
occupancy version carries its true costs: spill reloads appear as local
loads, shared-memory promotion as shared accesses, compressible-stack
saves/restores as extra ALU moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Module
from repro.isa.instructions import FuncUnit, Instruction, MemSpace, Opcode
from repro.sim.interp import Interpreter, LaunchConfig, Value, _ThreadState


@dataclass(frozen=True)
class MemoryTraits:
    """How a warp's 32 lanes spread around the representative address.

    ``lane_stride_bytes`` maps each memory space to the byte distance
    between consecutive lanes' accesses.  4 = unit-stride (coalesced);
    128 or more = one cache line per lane (fully diverged).  Local
    (spill) memory is hardware-interleaved per thread and therefore
    always coalesced.  ``divergence`` multiplies ALU issue cost to model
    intra-warp control divergence (serialised branch paths).
    """

    global_lane_stride: int = 4
    divergence: float = 1.0
    #: fraction of warps following a second, strided address stream
    #: (models the irregular tail of graph/data-mining workloads)
    irregularity: float = 0.0
    #: lanes that actually issue a memory access (graph kernels leave
    #: most of the warp idle at any one step: sparse but latency-bound)
    active_lanes: int = 32

    def lane_stride(self, space: MemSpace) -> int:
        if space in (MemSpace.GLOBAL, MemSpace.PARAM):
            return self.global_lane_stride
        return 4


@dataclass(frozen=True)
class TraceEvent:
    """One warp-level instruction occurrence."""

    unit: FuncUnit
    space: MemSpace | None = None
    #: distinct cache-line base addresses this warp instruction touches
    lines: tuple[int, ...] = ()
    barrier: bool = False


@dataclass
class WarpTrace:
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.events)


class _TraceLimit(Exception):
    pass


#: Singleton events for instruction kinds whose TraceEvent is fully
#: determined by the opcode (everything except non-shared memory ops).
#: TraceEvent is frozen and compared by value, so sharing instances is
#: invisible to callers and skips a dataclass construction per event.
_EVENT_BY_OPCODE: dict[Opcode, TraceEvent] = {}
_SMEM_EVENT = TraceEvent(unit=FuncUnit.SMEM, space=MemSpace.SHARED)

# Flat-encoding codes shared with :mod:`repro.sim.flat` (defined here
# so the import direction stays trace -> flat acyclic).  The accelerated
# tracing path emits these arrays alongside the event stream, saving the
# flattening re-walk; ``repro.sim.flat._flatten_trace`` remains the
# reference encoder for traces built any other way.
FLAT_ALU, FLAT_MEM, FLAT_SMEM, FLAT_SFU, FLAT_CTRL, FLAT_BARRIER = range(6)
FLAT_SP_GLOBAL, FLAT_SP_LOCAL, FLAT_SP_OTHER, FLAT_SP_SHARED = range(4)

_UNIT_CODE = {
    FuncUnit.SMEM: FLAT_SMEM,
    FuncUnit.SFU: FLAT_SFU,
    FuncUnit.CTRL: FLAT_CTRL,
}


def _opcode_event(inst: Instruction) -> TraceEvent:
    op = inst.opcode
    event = _EVENT_BY_OPCODE.get(op)
    if event is None:
        if op is Opcode.BAR:
            event = TraceEvent(unit=FuncUnit.SYNC, barrier=True)
        else:
            event = TraceEvent(unit=inst.func_unit)
        _EVENT_BY_OPCODE[op] = event
    return event


def warp_lines(
    address: int,
    space: MemSpace,
    traits: MemoryTraits,
    warp_size: int = 32,
    line_bytes: int = 128,
) -> tuple[int, ...]:
    """Cache lines touched by a warp given its representative address."""
    stride = traits.lane_stride(space)
    lanes = min(warp_size, max(1, traits.active_lanes))
    # Closed forms for the common stride shapes (identical to the
    # general dedup below, just without per-lane set churn): lane
    # addresses form an arithmetic progression, so when the step is at
    # most a line every line between the first and last is touched, and
    # when the step is a whole number of lines the lines are themselves
    # an arithmetic progression.
    if lanes == 1 or stride == 0:
        return (address - address % line_bytes,)
    if 0 < stride <= line_bytes:
        first = address - address % line_bytes
        span = address + (lanes - 1) * stride
        last = span - span % line_bytes
        return tuple(range(first, last + 1, line_bytes))
    if stride > 0 and stride % line_bytes == 0:
        first = address - address % line_bytes
        return tuple(first + lane * stride for lane in range(lanes))
    lines = {
        (address + lane * stride) // line_bytes * line_bytes
        for lane in range(lanes)
    }
    return tuple(sorted(lines))


def generate_warp_traces(
    module: Module,
    kernel_name: str,
    launch: LaunchConfig,
    resident_warps: int,
    traits: MemoryTraits | None = None,
    max_events_per_warp: int = 6000,
    global_memory: dict[int, Value] | None = None,
    line_bytes: int = 128,
) -> list[WarpTrace]:
    """Trace ``resident_warps`` warps of a kernel launch.

    Warp *w* is represented by global thread ``w * 32``; its block index
    and in-block thread id follow from the launch geometry.  Barriers
    are recorded as events (the SM simulator enforces the rendezvous);
    cross-thread shared-memory values read as zero, which leaves control
    flow intact for the workloads in :mod:`repro.bench`.
    """
    traits = traits or MemoryTraits()
    kernel = module.functions[kernel_name]
    warps_per_block = max(1, (launch.block_size + 31) // 32)
    interp = Interpreter(module, max_steps=max(10 * max_events_per_warp, 100_000))
    return [
        _trace_warp(
            interp,
            kernel,
            launch,
            w,
            warps_per_block,
            traits,
            max_events_per_warp,
            global_memory,
            line_bytes,
        )
        for w in range(resident_warps)
    ]


def _trace_warp(
    interp: Interpreter,
    kernel,
    launch: LaunchConfig,
    w: int,
    warps_per_block: int,
    traits: MemoryTraits,
    max_events_per_warp: int,
    global_memory: dict[int, Value] | None,
    line_bytes: int,
    collect_flat: bool = False,
) -> WarpTrace:
    """Trace one warp; warp *w*'s trace is independent of how many other
    warps are resident, which is what makes per-warp caching sound."""
    block_index = w // warps_per_block
    tid = (w % warps_per_block) * 32
    if block_index >= launch.grid_blocks:
        block_index %= max(1, launch.grid_blocks)
    # A slice of warps follows a diverged address stream, modelling
    # the irregular tail of graph/data-mining workloads.
    warp_traits = traits
    if traits.irregularity > 0 and ((w * 2654435761) % 97) / 97.0 < (
        traits.irregularity
    ):
        warp_traits = MemoryTraits(
            global_lane_stride=max(line_bytes, traits.global_lane_stride),
            divergence=traits.divergence,
            irregularity=traits.irregularity,
            active_lanes=traits.active_lanes,
        )
    trace = WarpTrace()
    events = trace.events

    local_base = w * line_bytes

    # When collecting for the accelerated simulator, the flat arrays
    # (see ``repro.sim.flat._flatten_trace``) are emitted here alongside
    # the event stream, so the simulator never re-walks the events.
    if collect_flat:
        f_codes: list[int] | None = []
        f_counts: list[int] = []
        f_spaces: list[int] = []
        f_lines: list[int] = []
    else:
        f_codes = f_counts = f_spaces = f_lines = None

    def observe(
        inst: Instruction,
        state: _ThreadState,
        address: int | None,
        _traits: MemoryTraits = warp_traits,
        _events: list[TraceEvent] = events,
        _codes: list[int] | None = f_codes,
        _counts: list[int] | None = f_counts,
        _spaces: list[int] | None = f_spaces,
        _lines: list[int] | None = f_lines,
    ) -> None:
        # Inlined _event_for: ``address is None`` exactly when the
        # instruction is not a memory op (the interpreter only computes
        # addresses for memory ops), so non-memory events come from the
        # per-opcode singleton table without touching func_unit.
        if len(_events) >= max_events_per_warp:
            raise _TraceLimit()
        if address is None:
            # Cached on the instruction (opcode-determined, so it never
            # goes stale): skips the per-step dict probe and enum hash.
            plan = inst._trace_event
            if plan is None:
                event = _opcode_event(inst)
                code = (
                    FLAT_BARRIER
                    if event.barrier
                    else _UNIT_CODE.get(event.unit, FLAT_ALU)
                )
                plan = inst._trace_event = (event, code)
            _events.append(plan[0])
            if _codes is not None:
                _codes.append(plan[1])
                _counts.append(0)
                _spaces.append(FLAT_SP_OTHER)
            return
        space = inst.space
        assert space is not None
        if space is MemSpace.SHARED:
            _events.append(_SMEM_EVENT)
            if _codes is not None:
                # SMEM-unit events flatten as non-memory occurrences.
                _codes.append(FLAT_SMEM)
                _counts.append(0)
                _spaces.append(FLAT_SP_OTHER)
        elif space is MemSpace.LOCAL:
            # Hardware interleaves local memory per thread: one warp's
            # access to slot ``s`` is one (warp-private) cache line at
            # slot-major, warp-minor layout.
            line = (address // 4) * 8192 + local_base
            _events.append(
                TraceEvent(unit=FuncUnit.MEM, space=space, lines=(line,))
            )
            if _codes is not None:
                _codes.append(FLAT_MEM)
                _counts.append(1)
                _spaces.append(FLAT_SP_LOCAL)
                _lines.append(line)
        else:
            lines = warp_lines(
                address, space, _traits, line_bytes=line_bytes
            )
            _events.append(
                TraceEvent(unit=FuncUnit.MEM, space=space, lines=lines)
            )
            if _codes is not None:
                _codes.append(FLAT_MEM)
                _counts.append(len(lines))
                _spaces.append(
                    FLAT_SP_GLOBAL
                    if space in (MemSpace.GLOBAL, MemSpace.PARAM)
                    else FLAT_SP_OTHER
                )
                _lines.extend(lines)

    interp.observer = observe
    state = _ThreadState(tid, block_index)
    memory = dict(global_memory or {})
    shared: dict[int, Value] = {}
    gen = interp._run_function(kernel, state, launch, memory, shared, [])
    try:
        for _ in gen:
            pass  # barriers already recorded by the observer
    except _TraceLimit:
        trace.truncated = True
    finally:
        interp.observer = None
    if collect_flat:
        trace._flat = (f_codes, f_counts, f_spaces, f_lines)
    return trace


def _event_for(
    inst: Instruction,
    address: int | None,
    traits: MemoryTraits,
    line_bytes: int,
    warp_index: int,
) -> TraceEvent:
    op = inst.opcode
    if op is Opcode.BAR:
        return TraceEvent(unit=FuncUnit.SYNC, barrier=True)
    if inst.is_memory:
        assert address is not None and inst.space is not None
        if inst.space is MemSpace.SHARED:
            return TraceEvent(unit=FuncUnit.SMEM, space=inst.space)
        if inst.space is MemSpace.LOCAL:
            # Hardware interleaves local memory per thread: one warp's
            # access to slot ``s`` is one (warp-private) cache line at
            # slot-major, warp-minor layout.
            line = (address // 4) * 8192 + warp_index * line_bytes
            return TraceEvent(
                unit=FuncUnit.MEM, space=inst.space, lines=(line,)
            )
        lines = warp_lines(address, inst.space, traits, line_bytes=line_bytes)
        return TraceEvent(unit=FuncUnit.MEM, space=inst.space, lines=lines)
    return TraceEvent(unit=inst.func_unit)


def trace_summary(traces: list[WarpTrace]) -> dict[str, int]:
    """Instruction-mix counters (useful in tests and reports)."""
    counts = {unit.value: 0 for unit in FuncUnit}
    transactions = 0
    for trace in traces:
        for event in trace.events:
            counts[event.unit.value] += 1
            transactions += len(event.lines)
    counts["transactions"] = transactions
    return counts
