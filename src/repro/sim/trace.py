"""Per-warp instruction/address trace generation.

The timing simulator consumes traces, not IR: for each resident warp we
execute one *representative lane* (lane 0) through the real kernel
binary with the functional interpreter and record every instruction —
opcode class, memory space, and the set of cache lines the full warp
would touch.  The other 31 lanes' addresses are derived from the
representative address via the benchmark's *lane stride* (4 bytes =
perfectly coalesced, one or two 128B transactions; 128+ bytes = one
transaction per lane, the paper's irregular-access pathology).

Because the traces come from the actual allocated binaries, every
occupancy version carries its true costs: spill reloads appear as local
loads, shared-memory promotion as shared accesses, compressible-stack
saves/restores as extra ALU moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Module
from repro.isa.instructions import FuncUnit, Instruction, MemSpace, Opcode
from repro.sim.interp import Interpreter, LaunchConfig, Value, _ThreadState


@dataclass(frozen=True)
class MemoryTraits:
    """How a warp's 32 lanes spread around the representative address.

    ``lane_stride_bytes`` maps each memory space to the byte distance
    between consecutive lanes' accesses.  4 = unit-stride (coalesced);
    128 or more = one cache line per lane (fully diverged).  Local
    (spill) memory is hardware-interleaved per thread and therefore
    always coalesced.  ``divergence`` multiplies ALU issue cost to model
    intra-warp control divergence (serialised branch paths).
    """

    global_lane_stride: int = 4
    divergence: float = 1.0
    #: fraction of warps following a second, strided address stream
    #: (models the irregular tail of graph/data-mining workloads)
    irregularity: float = 0.0
    #: lanes that actually issue a memory access (graph kernels leave
    #: most of the warp idle at any one step: sparse but latency-bound)
    active_lanes: int = 32

    def lane_stride(self, space: MemSpace) -> int:
        if space in (MemSpace.GLOBAL, MemSpace.PARAM):
            return self.global_lane_stride
        return 4


@dataclass(frozen=True)
class TraceEvent:
    """One warp-level instruction occurrence."""

    unit: FuncUnit
    space: MemSpace | None = None
    #: distinct cache-line base addresses this warp instruction touches
    lines: tuple[int, ...] = ()
    barrier: bool = False


@dataclass
class WarpTrace:
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.events)


class _TraceLimit(Exception):
    pass


def warp_lines(
    address: int,
    space: MemSpace,
    traits: MemoryTraits,
    warp_size: int = 32,
    line_bytes: int = 128,
) -> tuple[int, ...]:
    """Cache lines touched by a warp given its representative address."""
    stride = traits.lane_stride(space)
    lanes = min(warp_size, max(1, traits.active_lanes))
    lines = {
        (address + lane * stride) // line_bytes * line_bytes
        for lane in range(lanes)
    }
    return tuple(sorted(lines))


def generate_warp_traces(
    module: Module,
    kernel_name: str,
    launch: LaunchConfig,
    resident_warps: int,
    traits: MemoryTraits | None = None,
    max_events_per_warp: int = 6000,
    global_memory: dict[int, Value] | None = None,
    line_bytes: int = 128,
) -> list[WarpTrace]:
    """Trace ``resident_warps`` warps of a kernel launch.

    Warp *w* is represented by global thread ``w * 32``; its block index
    and in-block thread id follow from the launch geometry.  Barriers
    are recorded as events (the SM simulator enforces the rendezvous);
    cross-thread shared-memory values read as zero, which leaves control
    flow intact for the workloads in :mod:`repro.bench`.
    """
    traits = traits or MemoryTraits()
    kernel = module.functions[kernel_name]
    warps_per_block = max(1, (launch.block_size + 31) // 32)
    interp = Interpreter(module, max_steps=max(10 * max_events_per_warp, 100_000))

    traces: list[WarpTrace] = []
    for w in range(resident_warps):
        block_index = w // warps_per_block
        tid = (w % warps_per_block) * 32
        if block_index >= launch.grid_blocks:
            block_index %= max(1, launch.grid_blocks)
        # A slice of warps follows a diverged address stream, modelling
        # the irregular tail of graph/data-mining workloads.
        warp_traits = traits
        if traits.irregularity > 0 and ((w * 2654435761) % 97) / 97.0 < (
            traits.irregularity
        ):
            warp_traits = MemoryTraits(
                global_lane_stride=max(line_bytes, traits.global_lane_stride),
                divergence=traits.divergence,
                irregularity=traits.irregularity,
                active_lanes=traits.active_lanes,
            )
        trace = WarpTrace()
        events = trace.events

        def observe(
            inst: Instruction,
            state: _ThreadState,
            address: int | None,
            _traits: MemoryTraits = warp_traits,
            _warp: int = w,
        ) -> None:
            if len(events) >= max_events_per_warp:
                raise _TraceLimit()
            events.append(
                _event_for(inst, address, _traits, line_bytes, _warp)
            )

        interp.observer = observe
        state = _ThreadState(tid, block_index)
        memory = dict(global_memory or {})
        shared: dict[int, Value] = {}
        gen = interp._run_function(kernel, state, launch, memory, shared, [])
        try:
            for _ in gen:
                pass  # barriers already recorded by the observer
        except _TraceLimit:
            trace.truncated = True
        finally:
            interp.observer = None
        traces.append(trace)
    return traces


def _event_for(
    inst: Instruction,
    address: int | None,
    traits: MemoryTraits,
    line_bytes: int,
    warp_index: int,
) -> TraceEvent:
    op = inst.opcode
    if op is Opcode.BAR:
        return TraceEvent(unit=FuncUnit.SYNC, barrier=True)
    if inst.is_memory:
        assert address is not None and inst.space is not None
        if inst.space is MemSpace.SHARED:
            return TraceEvent(unit=FuncUnit.SMEM, space=inst.space)
        if inst.space is MemSpace.LOCAL:
            # Hardware interleaves local memory per thread: one warp's
            # access to slot ``s`` is one (warp-private) cache line at
            # slot-major, warp-minor layout.
            line = (address // 4) * 8192 + warp_index * line_bytes
            return TraceEvent(
                unit=FuncUnit.MEM, space=inst.space, lines=(line,)
            )
        lines = warp_lines(address, inst.space, traits, line_bytes=line_bytes)
        return TraceEvent(unit=FuncUnit.MEM, space=inst.space, lines=lines)
    return TraceEvent(unit=inst.func_unit)


def trace_summary(traces: list[WarpTrace]) -> dict[str, int]:
    """Instruction-mix counters (useful in tests and reports)."""
    counts = {unit.value: 0 for unit in FuncUnit}
    transactions = 0
    for trace in traces:
        for event in trace.events:
            counts[event.unit.value] += 1
            transactions += len(event.lines)
    counts["transactions"] = transactions
    return counts
