"""Energy model (paper Section 4.2, Figure 13).

The paper measures with CUPTI that lowering occupancy while holding
runtime flat cuts energy, "due to the reduced utilization of the
register file".  We model exactly that mechanism:

    P = P_base + N_sm · (P_sm + P_rf · RF-utilisation + P_warp · warps)
    E = P × runtime

RF-utilisation is the fraction of the register file actually allocated
to resident threads (the occupancy calculator reports it), so a version
that halves occupancy at equal runtime shows a single-digit-percent
energy saving — the shape of Figure 13.  Units are arbitrary but
self-consistent; only normalised comparisons are meaningful, which is
also all the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.occupancy import OccupancyResult
from repro.arch.specs import GpuArchitecture
from repro.sim.gpu import KernelTiming


@dataclass(frozen=True)
class EnergyReport:
    power: float
    cycles: int

    @property
    def energy(self) -> float:
        return self.power * self.cycles


def gpu_power(arch: GpuArchitecture, occupancy: OccupancyResult) -> float:
    """Average power draw while a kernel runs at this occupancy."""
    rf_utilisation = occupancy.allocated_registers / arch.registers_per_sm
    per_sm = (
        arch.power_per_sm
        + arch.power_register_file * rf_utilisation
        + arch.power_per_active_warp * occupancy.active_warps
    )
    return arch.power_base + arch.num_sms * per_sm


def kernel_energy(arch: GpuArchitecture, timing: KernelTiming) -> EnergyReport:
    """Energy of a simulated launch: power(occupancy) × total cycles."""
    return EnergyReport(
        power=gpu_power(arch, timing.occupancy),
        cycles=timing.total_cycles,
    )
