"""Flattened fast path for the SM timing simulator (``ORION_ACCEL``).

:class:`~repro.sim.sm.SMSimulator` is an event-driven loop: per event it
pays dataclass attribute walks, a ``FuncUnit`` identity ladder, and —
for memory events — per-line set-index hashing and MSHR list filtering.
This module batches each warp's event stream into flat arrays up front
(unit codes, issue costs, latency deltas, line counts) and precomputes
every line's cache tag and L1/L2 set index in one vectorized numpy pass,
so the hot loop is list indexing plus the same heap scheduling.

The semantics are the reference semantics, replicated operation for
operation: identical floats, identical LRU/MSHR state evolution,
identical tie-breaks, so :func:`run_flat` returns byte-identical
results to ``SMSimulator.run`` — only faster.  The pure loop in
``sm.py`` stays the reference; dispatch lives there, gated on
:func:`repro.accel.numpy_or_none`.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from heapq import heapify, heappop, heappush

from repro.isa.instructions import FuncUnit, MemSpace
from repro.sim.memory import MemoryStats, SetAssociativeCache
from repro.sim.trace import (
    FLAT_ALU as _ALU,
    FLAT_BARRIER as _BARRIER,
    FLAT_CTRL as _CTRL,
    FLAT_MEM as _MEM,
    FLAT_SFU as _SFU,
    FLAT_SMEM as _SMEM,
    FLAT_SP_GLOBAL as _SP_GLOBAL,
    FLAT_SP_LOCAL as _SP_LOCAL,
    FLAT_SP_OTHER as _SP_OTHER,
    FLAT_SP_SHARED as _SP_SHARED,
    WarpTrace,
)

# Unit codes (flat-array encoding of the FuncUnit ladder in sm.py) and
# space codes (what decides L1 participation) are shared with trace.py,
# whose accelerated tracing path emits the same arrays directly:
#   _ALU/_MEM/_SMEM/_SFU/_CTRL/_BARRIER;
#   _SP_GLOBAL (L1 only when arch.l1_caches_global), _SP_LOCAL (spill
#   traffic: always L1), _SP_OTHER (straight to L2), _SP_SHARED (shared
#   space routed through a MEM event: fixed latency).

#: tags below this bound keep ``folded * 2654435761`` inside int64
_VECTOR_TAG_BOUND = 1 << 31


def _flatten_trace(trace: WarpTrace):
    """(codes, counts, spaces, lines) arrays for one warp trace.

    Memoized on the trace object: the gpu-level trace cache hands the
    same ``WarpTrace`` instances to many simulations.
    """
    cached = getattr(trace, "_flat", None)
    if cached is not None:
        return cached
    codes: list[int] = []
    counts: list[int] = []
    spaces: list[int] = []
    lines: list[int] = []
    for event in trace.events:
        if event.barrier:
            codes.append(_BARRIER)
            counts.append(0)
            spaces.append(_SP_OTHER)
            continue
        unit = event.unit
        if unit is FuncUnit.MEM:
            codes.append(_MEM)
            counts.append(len(event.lines))
            lines.extend(event.lines)
            space = event.space
            if space is MemSpace.LOCAL:
                spaces.append(_SP_LOCAL)
            elif space in (MemSpace.GLOBAL, MemSpace.PARAM):
                spaces.append(_SP_GLOBAL)
            elif space is MemSpace.SHARED:
                spaces.append(_SP_SHARED)
            else:
                spaces.append(_SP_OTHER)
        else:
            if unit is FuncUnit.SMEM:
                codes.append(_SMEM)
            elif unit is FuncUnit.SFU:
                codes.append(_SFU)
            elif unit is FuncUnit.CTRL:
                codes.append(_CTRL)
            else:  # ALU and everything else, as in the reference ladder
                codes.append(_ALU)
            counts.append(0)
            spaces.append(_SP_OTHER)
    flat = (codes, counts, spaces, lines)
    trace._flat = flat
    return flat


def _line_tables(trace: WarpTrace, lines: list[int], line_bytes: int,
                 l1_sets: int, l2_sets: int, np):
    """Per-occurrence (tags, l1 indices, l2 indices) for a warp's lines.

    Vectorized with numpy when every tag fits the int64-safe hash
    window; otherwise the reference per-line hash.  Memoized per cache
    geometry on the trace object.
    """
    key = (line_bytes, l1_sets, l2_sets)
    memo = getattr(trace, "_flat_lines", None)
    if memo is None:
        memo = {}
        trace._flat_lines = memo
    tables = memo.get(key)
    if tables is not None:
        return tables
    if not lines:
        tables = ((), (), ())
        memo[key] = tables
        return tables
    tags = None
    try:
        arr = np.asarray(lines, dtype=np.int64)
    except OverflowError:
        arr = None
    if arr is not None:
        t = arr // line_bytes
        if 0 <= int(t.min()) and int(t.max()) < _VECTOR_TAG_BOUND:
            folded = t ^ (t >> 7) ^ (t >> 13) ^ (t >> 19)
            hashed = (folded * 2654435761) >> 8
            tables = (
                t.tolist(),
                (hashed % l1_sets).tolist(),
                (hashed % l2_sets).tolist(),
            )
            memo[key] = tables
            return tables
        tags = t.tolist()
    if tags is None:
        tags = [line // line_bytes for line in lines]
    l1_idx = []
    l2_idx = []
    for tag in tags:
        folded = tag ^ (tag >> 7) ^ (tag >> 13) ^ (tag >> 19)
        hashed = folded * 2654435761 >> 8
        l1_idx.append(hashed % l1_sets)
        l2_idx.append(hashed % l2_sets)
    tables = (tags, l1_idx, l2_idx)
    memo[key] = tables
    return tables


def run_flat(sim, traces: list[WarpTrace], warps_per_block: int, np):
    """Fast-path equivalent of ``SMSimulator.run`` body (non-empty traces).

    Returns ``(cycles, instructions, MemoryStats, issue_stalls,
    barriers)`` — the caller wraps it in ``SMResult``.
    """
    arch = sim.arch
    l1 = SetAssociativeCache(
        arch.l1_cache_bytes(sim.cache_config),
        arch.cache_line_bytes,
        arch.l1_associativity,
    )
    l2 = SetAssociativeCache(
        arch.l2_bytes_per_sm,
        arch.cache_line_bytes,
        arch.l2_associativity,
    )
    line_bytes = arch.cache_line_bytes
    l1_ways, l2_ways = l1._sets, l2._sets
    l1_assoc, l2_assoc = l1.associativity, l2.associativity
    l1_latency, l2_latency = arch.l1_latency, arch.l2_latency
    dram_latency = arch.dram_latency
    dram_interval = arch.dram_service_interval
    shared_latency = arch.shared_latency
    l1_global = arch.l1_caches_global
    mshr_limit = arch.max_outstanding_memory
    mshr_cap = 4 * mshr_limit

    issue_interval = 1.0 / arch.issue_width
    alu_latency = max(1.0, arch.alu_latency / sim.ilp)
    sfu_latency = max(1.0, arch.sfu_latency / sim.ilp)
    sfu_cost = issue_interval * 4
    alu_cost = issue_interval * sim.traits.divergence
    swap_interval = sim.swap_interval
    swap_latency = sim.swap_latency

    nwarps = len(traces)
    wpb = max(1, warps_per_block)
    block_of = [i // wpb for i in range(nwarps)]
    blocks: dict[int, list[int]] = {}
    for i in range(nwarps):
        blocks.setdefault(block_of[i], []).append(i)

    # Per-warp flattened event streams and precomputed line tables.
    w_codes: list[list[int]] = []
    w_counts: list[list[int]] = []
    w_spaces: list[list[int]] = []
    w_costs: list[list[float]] = []
    w_tags: list = []
    w_l1i: list = []
    w_l2i: list = []
    nev: list[int] = []
    cost_key = (issue_interval, sfu_cost, alu_cost)
    for trace in traces:
        codes, counts, spaces, lines = _flatten_trace(trace)
        tags, l1i, l2i = _line_tables(
            trace, lines, line_bytes, l1.num_sets, l2.num_sets, np
        )
        # Issue costs depend only on the event stream and three floats,
        # so they are memoized per trace like the line tables (sweeps
        # re-simulate the same traces many times).
        cost_memo = getattr(trace, "_flat_costs", None)
        if cost_memo is None:
            cost_memo = {}
            trace._flat_costs = cost_memo
        costs = cost_memo.get(cost_key)
        if costs is None:
            costs = [
                issue_interval * max(1, counts[e])
                if codes[e] == _MEM
                else (sfu_cost if codes[e] == _SFU else alu_cost)
                for e in range(len(codes))
            ]
            cost_memo[cost_key] = costs
        w_codes.append(codes)
        w_counts.append(counts)
        w_spaces.append(spaces)
        w_costs.append(costs)
        w_tags.append(tags)
        w_l1i.append(l1i)
        w_l2i.append(l2i)
        nev.append(len(codes))

    # Mutable per-warp state (parallel arrays instead of _Warp objects).
    pc = [0] * nwarps
    readys = [0.0] * nwarps
    at_bar = [False] * nwarps
    bar_arrival = [0.0] * nwarps
    cursor = [0] * nwarps  # next line-occurrence index per warp

    # Memory-subsystem state: MSHR list kept *sorted* (the reference
    # keeps insertion order, but every observable — the admit decision,
    # min in flight, the size-capped truncation — depends only on the
    # multiset, so a sorted list is behaviourally identical and cheaper).
    in_flight: list[int] = []
    dram_free = 0
    l1_hits = l1_misses = l2_hits = l2_misses = 0
    dram_tx = stalled = shared_accesses = 0

    issue_clock = 0.0
    instructions = 0
    issue_stalls = 0.0
    barriers = 0
    finish = 0.0

    heap: list[tuple[float, int]] = [(0.0, i) for i in range(nwarps)]
    heapify(heap)

    while heap:
        ready, index = heappop(heap)
        p = pc[index]
        if p >= nev[index] or at_bar[index] or readys[index] != ready:
            continue  # stale heap entry

        # Inner loop: keep issuing for this warp while it stays the
        # lexicographic minimum of the ready heap — the entry we would
        # push would pop right back, so skipping the round-trip issues
        # the exact same event sequence.
        while True:
            start = issue_clock if issue_clock >= ready else ready
            if start > issue_clock:
                issue_stalls += start - issue_clock

            codes = w_codes[index]
            code = codes[p]

            if code == _BARRIER:
                barriers += 1
                pc[index] = p + 1
                at_bar[index] = True
                bar_arrival[index] = start
                issue_clock = start + issue_interval
                instructions += 1
                group = blocks[block_of[index]]
                if all(at_bar[j] or pc[j] >= nev[j] for j in group):
                    release = max(
                        bar_arrival[j] for j in group if at_bar[j]
                    )
                    ready_after = release + 1
                    for j in group:
                        if at_bar[j]:
                            at_bar[j] = False
                            readys[j] = ready_after
                            if pc[j] < nev[j]:
                                heappush(heap, (ready_after, j))
                            elif ready_after > finish:
                                finish = ready_after
                break

            if code == _MEM:
                cost = w_costs[index][p]
                count = w_counts[index][p]
                completion = start
                if count:
                    now = int(start)
                    space = w_spaces[index][p]
                    cur = cursor[index]
                    cursor[index] = cur + count
                    if space == _SP_SHARED:
                        shared_accesses += count
                        done = float(now + shared_latency)
                        if done > completion:
                            completion = done
                    else:
                        use_l1 = space == _SP_LOCAL or (
                            space == _SP_GLOBAL and l1_global
                        )
                        tags = w_tags[index]
                        l1i = w_l1i[index]
                        l2i = w_l2i[index]
                        for k in range(cur, cur + count):
                            tag = tags[k]
                            # MSHR admit: drop retired entries, stall
                            # when the outstanding window is full.
                            drop = bisect_right(in_flight, now)
                            if drop:
                                del in_flight[:drop]
                            if len(in_flight) < mshr_limit:
                                admitted = now
                            else:
                                stalled += 1
                                admitted = in_flight[0]
                            if use_l1:
                                ways = l1_ways[l1i[k]]
                                if tag in ways:
                                    ways.remove(tag)
                                    ways.append(tag)
                                    l1_hits += 1
                                    done = float(admitted + l1_latency)
                                    if done > completion:
                                        completion = done
                                    continue
                                ways.append(tag)
                                if len(ways) > l1_assoc:
                                    del ways[0]
                                l1_misses += 1
                            ways = l2_ways[l2i[k]]
                            if tag in ways:
                                ways.remove(tag)
                                ways.append(tag)
                                l2_hits += 1
                                done = admitted + l2_latency
                            else:
                                ways.append(tag)
                                if len(ways) > l2_assoc:
                                    del ways[0]
                                l2_misses += 1
                                dram_tx += 1
                                issue = (
                                    admitted
                                    if admitted >= dram_free
                                    else dram_free
                                )
                                dram_free = issue + dram_interval
                                done = issue + dram_latency
                            insort(in_flight, done)
                            if len(in_flight) > mshr_cap:
                                del in_flight[:-mshr_limit]
                            done_f = float(done)
                            if done_f > completion:
                                completion = done_f
                readys[index] = completion
            elif code == _SMEM:
                readys[index] = start + shared_latency
                cost = issue_interval
            elif code == _SFU:
                readys[index] = start + sfu_latency
                cost = w_costs[index][p]
            elif code == _CTRL:
                readys[index] = start + 1
                cost = issue_interval
            else:  # _ALU
                readys[index] = start + alu_latency
                cost = w_costs[index][p]

            # Oversubscription swap cost — placed exactly where the
            # reference loop applies it (after the unit ladder, before
            # the issue clock advances) so floats stay byte-identical.
            if swap_interval and (p + 1) % swap_interval == 0:
                readys[index] += swap_latency

            issue_clock = start + cost
            instructions += 1
            pc[index] = p + 1
            if p + 1 >= nev[index]:
                warp_ready = readys[index]
                if warp_ready > finish:
                    finish = warp_ready
                # A warp finishing (e.g. a truncated trace) may be the
                # last thing its block's barrier was waiting on.
                group = blocks[block_of[index]]
                waiting = [j for j in group if at_bar[j]]
                if waiting and all(
                    at_bar[j] or pc[j] >= nev[j] for j in group
                ):
                    release = max(bar_arrival[j] for j in waiting)
                    ready_after = (
                        release if release >= warp_ready else warp_ready
                    ) + 1
                    for j in waiting:
                        at_bar[j] = False
                        readys[j] = ready_after
                        heappush(heap, (ready_after, j))
                break
            ready = readys[index]
            if heap:
                head = heap[0]
                if ready > head[0] or (
                    ready == head[0] and index > head[1]
                ):
                    # Another warp would issue first: take the usual
                    # heap round-trip.
                    heappush(heap, (ready, index))
                    break
            p += 1

    cycles = int(finish if finish >= issue_clock else issue_clock) + 1
    stats = MemoryStats(
        l1_hits=l1_hits,
        l1_misses=l1_misses,
        l2_hits=l2_hits,
        l2_misses=l2_misses,
        dram_transactions=dram_tx,
        shared_accesses=shared_accesses,
        stalled_requests=stalled,
    )
    return cycles, instructions, stats, int(issue_stalls), barriers
