"""Memory-hierarchy timing model: L1/L2 caches and DRAM bandwidth.

The occupancy↔performance trade-off the paper tunes comes from three
mechanisms, all modelled here:

* **latency**: an L1 hit costs tens of cycles, DRAM hundreds — few
  resident warps cannot hide the difference;
* **cache contention**: the L1 is shared by every resident warp, so
  raising occupancy shrinks each warp's effective cache slice (real
  set-associative LRU arrays, not a probability knob);
* **bandwidth**: DRAM serves at most one transaction per
  ``dram_service_interval`` cycles per SM, so many memory-hungry warps
  saturate and queue.

Per paper Section 4.1, the L1/shared split is configurable (Table 3's
small-cache = 16KB L1 vs large-cache = 48KB L1), and per Section 4.2 the
Fermi L1 caches global *and* local traffic while Kepler's caches local
(spill) traffic only — which is why downward tuning pays off more on the
C2075.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.isa.instructions import MemSpace


class SetAssociativeCache:
    """A timing-only set-associative LRU cache (no data, just tags)."""

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int,
        associativity: int,
        hash_sets: bool = True,
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        num_lines = max(1, size_bytes // line_bytes)
        self.associativity = min(associativity, num_lines)
        self.num_sets = max(1, num_lines // self.associativity)
        self.line_bytes = line_bytes
        # GPU caches hash the set index so power-of-two strides (the
        # norm in GPU address arithmetic) don't collapse onto one set.
        self.hash_sets = hash_sets
        # Each set: list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_index(self, line: int) -> int:
        if not self.hash_sets:
            return line % self.num_sets
        folded = line ^ (line >> 7) ^ (line >> 13) ^ (line >> 19)
        return (folded * 2654435761 >> 8) % self.num_sets

    def access(self, address: int) -> bool:
        """Touch the line containing ``address``; True on hit."""
        line = address // self.line_bytes
        index = self._set_index(line)
        tag = line
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.associativity:
            ways.pop(0)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass
class MemoryStats:
    """Aggregate counters for one simulation."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_transactions: int = 0
    shared_accesses: int = 0
    stalled_requests: int = 0

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0


class MemorySubsystem:
    """Per-SM view of the memory hierarchy with timing."""

    def __init__(
        self,
        arch: GpuArchitecture,
        cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    ) -> None:
        self.arch = arch
        self.cache_config = cache_config
        self.l1 = SetAssociativeCache(
            arch.l1_cache_bytes(cache_config),
            arch.cache_line_bytes,
            arch.l1_associativity,
        )
        self.l2 = SetAssociativeCache(
            arch.l2_bytes_per_sm,
            arch.cache_line_bytes,
            arch.l2_associativity,
        )
        self.stats = MemoryStats()
        #: completion times of requests currently in flight (MSHR model)
        self._in_flight: list[int] = []
        self._dram_free = 0

    # ------------------------------------------------------------------
    def request(self, address: int, space: MemSpace, now: int) -> int:
        """Issue one memory transaction; returns its completion cycle."""
        arch = self.arch
        if space is MemSpace.SHARED:
            self.stats.shared_accesses += 1
            return now + arch.shared_latency

        # L1 participation: local (spill) traffic is always L1-cached;
        # global traffic only on architectures whose L1 caches globals.
        use_l1 = space is MemSpace.LOCAL or (
            space in (MemSpace.GLOBAL, MemSpace.PARAM) and arch.l1_caches_global
        )

        start = self._admit(now)
        if use_l1 and self.l1.access(address):
            self.stats.l1_hits += 1
            return start + arch.l1_latency
        if use_l1:
            self.stats.l1_misses += 1

        if self.l2.access(address):
            self.stats.l2_hits += 1
            done = start + arch.l2_latency
        else:
            self.stats.l2_misses += 1
            self.stats.dram_transactions += 1
            issue = max(start, self._dram_free)
            self._dram_free = issue + arch.dram_service_interval
            done = issue + arch.dram_latency
        self._track(done)
        return done

    # ------------------------------------------------------------------
    def _admit(self, now: int) -> int:
        """Apply the outstanding-request (MSHR) limit."""
        limit = self.arch.max_outstanding_memory
        in_flight = [t for t in self._in_flight if t > now]
        self._in_flight = in_flight
        if len(in_flight) < limit:
            return now
        self.stats.stalled_requests += 1
        earliest = min(in_flight)
        return earliest

    def _track(self, completion: int) -> None:
        self._in_flight.append(completion)
        # Bound bookkeeping: keep only the most relevant entries.
        if len(self._in_flight) > 4 * self.arch.max_outstanding_memory:
            self._in_flight.sort()
            self._in_flight = self._in_flight[-self.arch.max_outstanding_memory :]
