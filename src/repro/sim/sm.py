"""Event-driven SM timing simulator.

One streaming multiprocessor holds ``W`` resident warps (the occupancy
knob) and interleaves their traces:

* the issue port serialises instruction issue at ``issue_width`` warp
  instructions per cycle — with enough ready warps the SM stays busy
  while other warps wait on memory (latency hiding);
* ALU/SFU events make the *issuing warp* unavailable for the operation
  latency (dependent-chain model; intra-thread ILP shortens it);
* memory events go through :class:`~repro.sim.memory.MemorySubsystem`,
  where cache contention and DRAM bandwidth push back as occupancy
  grows;
* barriers rendezvous all warps of a thread block.

The simulator is deterministic: greedy oldest-ready-warp scheduling with
stable tie-breaks, so every experiment is exactly reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro import accel
from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.isa.instructions import FuncUnit
from repro.sim.memory import MemoryStats, MemorySubsystem
from repro.sim.trace import MemoryTraits, WarpTrace

_INFINITY = float("inf")


@dataclass
class SMResult:
    """Outcome of simulating one wave of resident warps on one SM."""

    cycles: int
    instructions: int
    memory: MemoryStats
    issue_stall_cycles: int
    barrier_count: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class _Warp:
    trace: WarpTrace
    block: int
    #: identity index in the resident-warp list (heap key; two warps
    #: with equal traces must still schedule independently, so pushes
    #: use this rather than a value-equality list search)
    index: int = 0
    pc: int = 0
    ready: float = 0.0
    at_barrier: bool = False
    barrier_arrival: float = 0.0

    @property
    def done(self) -> bool:
        return self.pc >= len(self.trace.events)


class SMSimulator:
    """Simulates one SM executing a set of resident warp traces."""

    def __init__(
        self,
        arch: GpuArchitecture,
        cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
        traits: MemoryTraits | None = None,
        ilp: float = 1.0,
        swap_interval: int = 0,
        swap_latency: int = 0,
    ) -> None:
        self.arch = arch
        self.cache_config = cache_config
        self.traits = traits or MemoryTraits()
        if ilp <= 0:
            raise ValueError("ilp must be positive")
        self.ilp = ilp
        # Soft-limit (oversubscribed) strategies: every ``swap_interval``-th
        # instruction of a warp pays ``swap_latency`` extra cycles for
        # register state swapped out of the physical file.  ``0`` (the
        # default, and every hard-limit strategy) disables the model.
        if swap_interval < 0 or swap_latency < 0:
            raise ValueError("swap model parameters cannot be negative")
        self.swap_interval = swap_interval
        self.swap_latency = swap_latency

    def run(self, traces: list[WarpTrace], warps_per_block: int) -> SMResult:
        if not traces:
            return SMResult(0, 0, MemoryStats(), 0, 0)
        np = accel.numpy_or_none()
        if np is not None:
            from repro.sim.flat import run_flat

            accel.count_selected("simulator", "flat")
            return SMResult(*run_flat(self, traces, warps_per_block, np))
        accel.count_selected("simulator", "pure")
        return self._run_pure(traces, warps_per_block)

    def _run_pure(self, traces: list[WarpTrace], warps_per_block: int) -> SMResult:
        """The reference event loop (``ORION_ACCEL=off`` semantics)."""
        arch = self.arch
        memory = MemorySubsystem(arch, self.cache_config)
        warps = [
            _Warp(trace=t, block=i // max(1, warps_per_block), index=i)
            for i, t in enumerate(traces)
        ]
        blocks: dict[int, list[_Warp]] = {}
        for warp in warps:
            blocks.setdefault(warp.block, []).append(warp)

        issue_interval = 1.0 / arch.issue_width
        alu_latency = max(1.0, arch.alu_latency / self.ilp)
        sfu_latency = max(1.0, arch.sfu_latency / self.ilp)
        divergence = self.traits.divergence
        swap_interval = self.swap_interval
        swap_latency = self.swap_latency

        issue_clock = 0.0
        instructions = 0
        issue_stalls = 0.0
        barriers = 0
        finish = 0.0

        # Min-heap of (ready, index) for runnable warps.
        heap: list[tuple[float, int]] = [(0.0, i) for i in range(len(warps))]
        heapq.heapify(heap)

        while heap:
            ready, index = heapq.heappop(heap)
            warp = warps[index]
            if warp.done or warp.at_barrier or warp.ready != ready:
                continue  # stale heap entry
            event = warp.trace.events[warp.pc]

            start = max(issue_clock, ready)
            if start > issue_clock:
                issue_stalls += start - issue_clock

            if event.barrier:
                barriers += 1
                warp.pc += 1
                warp.at_barrier = True
                warp.barrier_arrival = start
                issue_clock = start + issue_interval
                instructions += 1
                group = blocks[warp.block]
                if all(w.at_barrier or w.done for w in group):
                    release = max(
                        w.barrier_arrival for w in group if w.at_barrier
                    )
                    for w in group:
                        if w.at_barrier:
                            w.at_barrier = False
                            w.ready = release + 1
                            if not w.done:
                                heapq.heappush(heap, (w.ready, w.index))
                            else:
                                finish = max(finish, w.ready)
                continue

            unit = event.unit
            if unit is FuncUnit.MEM:
                cost = issue_interval * max(1, len(event.lines))
                completion = start
                for line in event.lines:
                    done = memory.request(line, event.space, int(start))
                    completion = max(completion, float(done))
                warp.ready = completion
            elif unit is FuncUnit.SMEM:
                warp.ready = start + arch.shared_latency
                cost = issue_interval
            elif unit is FuncUnit.SFU:
                warp.ready = start + sfu_latency
                cost = issue_interval * 4
            elif unit is FuncUnit.CTRL:
                warp.ready = start + 1
                cost = issue_interval
            else:  # ALU and everything else
                warp.ready = start + alu_latency
                cost = issue_interval * divergence

            # Oversubscription swap cost (soft-limit strategies): a
            # deterministic per-warp surcharge on every interval-th
            # instruction, modelling a register group swapped back in.
            if swap_interval and (warp.pc + 1) % swap_interval == 0:
                warp.ready += swap_latency

            issue_clock = start + cost
            instructions += 1
            warp.pc += 1
            if warp.done:
                finish = max(finish, warp.ready)
                # A warp finishing (e.g. a truncated trace) may be the
                # last thing its block's barrier was waiting on.
                group = blocks[warp.block]
                waiting = [w for w in group if w.at_barrier]
                if waiting and all(w.at_barrier or w.done for w in group):
                    release = max(w.barrier_arrival for w in waiting)
                    for w in waiting:
                        w.at_barrier = False
                        w.ready = max(release, warp.ready) + 1
                        heapq.heappush(heap, (w.ready, w.index))
            else:
                heapq.heappush(heap, (warp.ready, index))

        cycles = int(max(finish, issue_clock)) + 1
        return SMResult(
            cycles=cycles,
            instructions=instructions,
            memory=memory.stats,
            issue_stall_cycles=int(issue_stalls),
            barrier_count=barriers,
        )
