"""Interference graph construction (input to the Fig. 4 allocator).

Two variables interfere when one is live at a definition point of the
other; interfering variables cannot share an on-chip memory slot.  Moves
get the classic Chaitin refinement: for ``MOV d, s`` the definition of
``d`` does not interfere with ``s`` itself, which keeps copy-related
variables colourable to the same slot.

Construction runs in the same dense-bitmask domain as the liveness
analysis: the backward walk keeps the live set as one integer and the
adjacency as per-register bitmasks, then materialises the classic
``dict[Reg, set[Reg]]`` adjacency once at the end.  Node order is the
deterministic dense numbering (first appearance in the instruction
stream), stable across runs and hash seeds.
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.liveness import analyze_liveness_masks
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg, VirtualReg


class InterferenceGraph:
    """Undirected graph over variables, width-aware.

    ``blocking_degree`` counts neighbours in register-slot units (a
    64-bit neighbour blocks two colours), which extends the Chaitin
    "degree < k" colourability guarantee to wide variables.

    Graphs built by :func:`build_interference` carry a *dense* form —
    nodes numbered ``0..n-1`` with ``list[int]`` neighbour lists — that
    the allocator's hot loops consume directly (:meth:`dense`); the
    classic ``dict[Reg, set[Reg]]`` adjacency is materialised lazily on
    first access, so colouring a graph never pays for Reg-object sets
    it does not read.
    """

    def __init__(self) -> None:
        self._adj: dict[Reg, set[Reg]] | None = {}
        #: raw output of build_interference: (regs, present bit order,
        #: one-directional adjacency bitmasks)
        self._dense_src: (
            tuple[list[Reg], list[int], list[int]] | None
        ) = None
        self._dense: (
            tuple[list[Reg], dict[Reg, int], list[list[int]], list[int]]
            | None
        ) = None

    @property
    def adjacency(self) -> dict[Reg, set[Reg]]:
        adj = self._adj
        if adj is None:
            adj = self._materialize()
        return adj

    @adjacency.setter
    def adjacency(self, value: dict[Reg, set[Reg]]) -> None:
        self._adj = value
        self._dense_src = None
        self._dense = None

    def _materialize(self) -> dict[Reg, set[Reg]]:
        """Expand the dense form into ``dict[Reg, set[Reg]]``.

        Symmetric insertion: each forward edge is walked once and lands
        in both endpoint sets, so the reverse direction is never built
        as a bitmask at all.
        """
        regs, order, masks = self._dense_src  # type: ignore[misc]
        adj: dict[Reg, set[Reg]] = {}
        for i in order:
            adj[regs[i]] = set()
        for i in order:
            mask = masks[i]
            if not mask:
                continue
            reg_i = regs[i]
            set_i = adj[reg_i]
            base = 0
            while mask:
                chunk = mask & 0xFFFFFFFF
                while chunk:
                    low = chunk & -chunk
                    reg_j = regs[base + low.bit_length() - 1]
                    set_i.add(reg_j)
                    adj[reg_j].add(reg_i)
                    chunk ^= low
                mask >>= 32
                base += 32
        self._adj = adj
        return adj

    def dense(
        self,
    ) -> tuple[list[Reg], dict[Reg, int], list[list[int]], list[int]]:
        """``(nodes, ids, neighbor_ids, widths)`` over dense node ids.

        Node order matches :attr:`nodes`; neighbour lists are symmetric.
        Cached; invalidated by any mutation of the graph.
        """
        cached = self._dense
        if cached is not None:
            return cached
        if self._adj is not None:
            nodes = list(self._adj)
            ids = {v: i for i, v in enumerate(nodes)}
            nbr = [[ids[n] for n in self._adj[v]] for v in nodes]
            widths = [v.width for v in nodes]
        else:
            regs, order, masks = self._dense_src  # type: ignore[misc]
            nodes = [regs[i] for i in order]
            remap = [0] * len(regs)
            for k, bit in enumerate(order):
                remap[bit] = k
            ids = {v: k for k, v in enumerate(nodes)}
            widths = [v.width for v in nodes]
            nbr = [[] for _ in nodes]
            for k, i in enumerate(order):
                mask = masks[i]
                if not mask:
                    continue
                lst_k = nbr[k]
                base = 0
                while mask:
                    chunk = mask & 0xFFFFFFFF
                    while chunk:
                        low = chunk & -chunk
                        kj = remap[base + low.bit_length() - 1]
                        lst_k.append(kj)
                        nbr[kj].append(k)
                        chunk ^= low
                    mask >>= 32
                    base += 32
        self._dense = (nodes, ids, nbr, widths)
        return self._dense

    def add_node(self, var: Reg) -> None:
        if self._adj is None:
            # Fast path for dense graphs: adding an existing node is a
            # no-op and must not force set materialisation.
            _, ids, _, _ = self.dense()
            if var in ids:
                return
        self._dense = None
        self.adjacency.setdefault(var, set())

    def add_edge(self, a: Reg, b: Reg) -> None:
        if a == b:
            return
        self._dense = None
        adj = self.adjacency
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)

    def interferes(self, a: Reg, b: Reg) -> bool:
        return b in self.adjacency.get(a, ())

    def neighbors(self, var: Reg) -> set[Reg]:
        return self.adjacency[var]

    def blocking_degree(self, var: Reg, removed: set[Reg]) -> int:
        """Sum of neighbour widths, ignoring already-removed nodes."""
        return sum(
            n.width for n in self.adjacency[var] if n not in removed
        )

    def edge_count(self, var: Reg, removed: set[Reg]) -> int:
        return sum(1 for n in self.adjacency[var] if n not in removed)

    @property
    def nodes(self) -> list[Reg]:
        if self._adj is None:
            regs, order, _ = self._dense_src  # type: ignore[misc]
            return [regs[i] for i in order]
        return list(self._adj)

    def copy(self) -> "InterferenceGraph":
        clone = InterferenceGraph()
        clone.adjacency = {v: set(ns) for v, ns in self.adjacency.items()}
        return clone

    def __len__(self) -> int:
        if self._adj is None:
            return len(self._dense_src[1])  # type: ignore[index]
        return len(self._adj)


def build_interference(
    fn: Function, cfg: CFG | None = None
) -> InterferenceGraph:
    """Construct the interference graph for a (non-SSA) function.

    Device-function arguments are treated as defined at function entry.
    """
    cfg = cfg or CFG(fn)
    # Mask-domain liveness shares its dense numbering with this walk, so
    # live sets never round-trip through set[Reg] at all.
    numbering, live_in_masks, live_out_masks, _, _ = analyze_liveness_masks(
        fn, cfg
    )

    args = [VirtualReg(i, 1) for i in range(fn.num_args)]
    index = numbering.index
    for reg in args:
        if reg not in index:
            index[reg] = len(numbering.regs)
            numbering.regs.append(reg)

    present = 0  # nodes of the graph, as a bitmask
    adjacency = [0] * len(numbering.regs)

    inst_masks = numbering.inst_masks
    for label in cfg.rpo:
        live = live_out_masks[label]
        present |= live
        for def_bit, read_mask, move_mask, is_phi in reversed(
            inst_masks[label]
        ):
            if def_bit >= 0:
                dmask = 1 << def_bit
                present |= dmask
                others = live & ~dmask & ~move_mask
                if others:
                    # One-directional during the walk; symmetrised once
                    # at the end (the walk never reads adjacency, so
                    # deferring the reverse edges changes nothing).
                    adjacency[def_bit] |= others
                live &= ~dmask
            if not is_phi:
                present |= read_mask
                live |= read_mask

    # Arguments are defined "before" the entry block: they interfere with
    # everything live at entry (including each other).
    entry_live = live_in_masks[cfg.entry]
    for arg in args:
        abit = index[arg]
        present |= 1 << abit
        others = entry_live & ~(1 << abit)
        adjacency[abit] |= others

    # Hand the dense form to the graph as-is; the dict[Reg, set[Reg]]
    # adjacency is materialised lazily, only for consumers that read it.
    graph = InterferenceGraph()
    graph._adj = None
    graph._dense_src = (numbering.regs, _bit_indices(present), adjacency)
    return graph


def _bit_indices(mask: int) -> list[int]:
    """Indices of the set bits of ``mask``, ascending."""
    out: list[int] = []
    base = 0
    while mask:
        chunk = mask & 0xFFFFFFFF
        while chunk:
            low = chunk & -chunk
            out.append(base + low.bit_length() - 1)
            chunk ^= low
        mask >>= 32
        base += 32
    return out


def move_pairs(fn: Function) -> list[tuple[Reg, Reg]]:
    """Copy-related variable pairs (candidates for coalescing)."""
    pairs = []
    for inst in fn.instructions():
        if (
            inst.opcode is Opcode.MOV
            and inst.dst is not None
            and inst.srcs
            and isinstance(inst.srcs[0], VirtualReg)
        ):
            pairs.append((inst.dst, inst.srcs[0]))
    return pairs
