"""Interference graph construction (input to the Fig. 4 allocator).

Two variables interfere when one is live at a definition point of the
other; interfering variables cannot share an on-chip memory slot.  Moves
get the classic Chaitin refinement: for ``MOV d, s`` the definition of
``d`` does not interfere with ``s`` itself, which keeps copy-related
variables colourable to the same slot.
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.liveness import analyze_liveness
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg, VirtualReg


class InterferenceGraph:
    """Undirected graph over variables, width-aware.

    ``blocking_degree`` counts neighbours in register-slot units (a
    64-bit neighbour blocks two colours), which extends the Chaitin
    "degree < k" colourability guarantee to wide variables.
    """

    def __init__(self) -> None:
        self.adjacency: dict[Reg, set[Reg]] = {}

    def add_node(self, var: Reg) -> None:
        self.adjacency.setdefault(var, set())

    def add_edge(self, a: Reg, b: Reg) -> None:
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self.adjacency[a].add(b)
        self.adjacency[b].add(a)

    def interferes(self, a: Reg, b: Reg) -> bool:
        return b in self.adjacency.get(a, ())

    def neighbors(self, var: Reg) -> set[Reg]:
        return self.adjacency[var]

    def blocking_degree(self, var: Reg, removed: set[Reg]) -> int:
        """Sum of neighbour widths, ignoring already-removed nodes."""
        return sum(
            n.width for n in self.adjacency[var] if n not in removed
        )

    def edge_count(self, var: Reg, removed: set[Reg]) -> int:
        return sum(1 for n in self.adjacency[var] if n not in removed)

    @property
    def nodes(self) -> list[Reg]:
        return list(self.adjacency)

    def copy(self) -> "InterferenceGraph":
        clone = InterferenceGraph()
        clone.adjacency = {v: set(ns) for v, ns in self.adjacency.items()}
        return clone

    def __len__(self) -> int:
        return len(self.adjacency)


def build_interference(
    fn: Function, cfg: CFG | None = None
) -> InterferenceGraph:
    """Construct the interference graph for a (non-SSA) function.

    Device-function arguments are treated as defined at function entry.
    """
    cfg = cfg or CFG(fn)
    info = analyze_liveness(fn, cfg)
    graph = InterferenceGraph()

    for label in cfg.rpo:
        block = fn.blocks[label]
        live: set[Reg] = set(info.live_out[label])
        for reg in live:
            graph.add_node(reg)
        for idx in range(len(block.instructions) - 1, -1, -1):
            inst = block.instructions[idx]
            written = inst.regs_written()
            move_source: Reg | None = None
            if (
                inst.opcode is Opcode.MOV
                and inst.srcs
                and isinstance(inst.srcs[0], VirtualReg)
            ):
                move_source = inst.srcs[0]
            for dst in written:
                graph.add_node(dst)
                for other in live:
                    if other is not dst and other != dst and other != move_source:
                        graph.add_edge(dst, other)
            for dst in written:
                live.discard(dst)
            if inst.opcode is not Opcode.PHI:
                for src in inst.regs_read():
                    graph.add_node(src)
                    live.add(src)

    # Arguments are defined "before" the entry block: they interfere with
    # everything live at entry (including each other).
    entry_live = set(info.live_in[cfg.entry])
    args = [VirtualReg(i, 1) for i in range(fn.num_args)]
    for arg in args:
        graph.add_node(arg)
        for other in entry_live:
            if other != arg:
                graph.add_edge(arg, other)

    return graph


def move_pairs(fn: Function) -> list[tuple[Reg, Reg]]:
    """Copy-related variable pairs (candidates for coalescing)."""
    pairs = []
    for inst in fn.instructions():
        if (
            inst.opcode is Opcode.MOV
            and inst.dst is not None
            and inst.srcs
            and isinstance(inst.srcs[0], VirtualReg)
        ):
            pairs.append((inst.dst, inst.srcs[0]))
    return pairs
