"""Interference graph construction (input to the Fig. 4 allocator).

Two variables interfere when one is live at a definition point of the
other; interfering variables cannot share an on-chip memory slot.  Moves
get the classic Chaitin refinement: for ``MOV d, s`` the definition of
``d`` does not interfere with ``s`` itself, which keeps copy-related
variables colourable to the same slot.

Construction runs in the same dense-bitmask domain as the liveness
analysis: the backward walk keeps the live set as one integer and the
adjacency as per-register bitmasks, then materialises the classic
``dict[Reg, set[Reg]]`` adjacency once at the end.  Node order is the
deterministic dense numbering (first appearance in the instruction
stream), stable across runs and hash seeds.
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.liveness import _RegNumbering, analyze_liveness
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg, VirtualReg


class InterferenceGraph:
    """Undirected graph over variables, width-aware.

    ``blocking_degree`` counts neighbours in register-slot units (a
    64-bit neighbour blocks two colours), which extends the Chaitin
    "degree < k" colourability guarantee to wide variables.
    """

    def __init__(self) -> None:
        self.adjacency: dict[Reg, set[Reg]] = {}

    def add_node(self, var: Reg) -> None:
        self.adjacency.setdefault(var, set())

    def add_edge(self, a: Reg, b: Reg) -> None:
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self.adjacency[a].add(b)
        self.adjacency[b].add(a)

    def interferes(self, a: Reg, b: Reg) -> bool:
        return b in self.adjacency.get(a, ())

    def neighbors(self, var: Reg) -> set[Reg]:
        return self.adjacency[var]

    def blocking_degree(self, var: Reg, removed: set[Reg]) -> int:
        """Sum of neighbour widths, ignoring already-removed nodes."""
        return sum(
            n.width for n in self.adjacency[var] if n not in removed
        )

    def edge_count(self, var: Reg, removed: set[Reg]) -> int:
        return sum(1 for n in self.adjacency[var] if n not in removed)

    @property
    def nodes(self) -> list[Reg]:
        return list(self.adjacency)

    def copy(self) -> "InterferenceGraph":
        clone = InterferenceGraph()
        clone.adjacency = {v: set(ns) for v, ns in self.adjacency.items()}
        return clone

    def __len__(self) -> int:
        return len(self.adjacency)


def build_interference(
    fn: Function, cfg: CFG | None = None
) -> InterferenceGraph:
    """Construct the interference graph for a (non-SSA) function.

    Device-function arguments are treated as defined at function entry.
    """
    cfg = cfg or CFG(fn)
    info = analyze_liveness(fn, cfg)

    args = [VirtualReg(i, 1) for i in range(fn.num_args)]
    numbering = _RegNumbering(fn, cfg.rpo)
    index = numbering.index
    for reg in args:
        if reg not in index:
            index[reg] = len(numbering.regs)
            numbering.regs.append(reg)

    def mask_of(regs) -> int:
        mask = 0
        for reg in regs:
            mask |= 1 << index[reg]
        return mask

    present = 0  # nodes of the graph, as a bitmask
    adjacency = [0] * len(numbering.regs)

    for label in cfg.rpo:
        block = fn.blocks[label]
        live = mask_of(info.live_out[label])
        present |= live
        for idx in range(len(block.instructions) - 1, -1, -1):
            inst = block.instructions[idx]
            written = inst.regs_written()
            move_mask = 0
            if (
                inst.opcode is Opcode.MOV
                and inst.srcs
                and isinstance(inst.srcs[0], VirtualReg)
            ):
                move_mask = 1 << index[inst.srcs[0]]
            for dst in written:
                dbit = index[dst]
                present |= 1 << dbit
                others = live & ~(1 << dbit) & ~move_mask
                if others:
                    adjacency[dbit] |= others
                    mask = others
                    base = 0
                    while mask:
                        chunk = mask & 0xFFFFFFFF
                        while chunk:
                            low = chunk & -chunk
                            adjacency[base + low.bit_length() - 1] |= 1 << dbit
                            chunk ^= low
                        mask >>= 32
                        base += 32
            for dst in written:
                live &= ~(1 << index[dst])
            if inst.opcode is not Opcode.PHI:
                for src in inst.regs_read():
                    b = 1 << index[src]
                    present |= b
                    live |= b

    # Arguments are defined "before" the entry block: they interfere with
    # everything live at entry (including each other).
    entry_live = mask_of(info.live_in[cfg.entry])
    for arg in args:
        abit = index[arg]
        present |= 1 << abit
        others = entry_live & ~(1 << abit)
        adjacency[abit] |= others
        mask = others
        base = 0
        while mask:
            chunk = mask & 0xFFFFFFFF
            while chunk:
                low = chunk & -chunk
                adjacency[base + low.bit_length() - 1] |= 1 << abit
                chunk ^= low
            mask >>= 32
            base += 32

    graph = InterferenceGraph()
    regs = numbering.regs
    mask = present
    base = 0
    while mask:
        chunk = mask & 0xFFFFFFFF
        while chunk:
            low = chunk & -chunk
            i = base + low.bit_length() - 1
            graph.adjacency[regs[i]] = {
                regs[j] for j in _bit_indices(adjacency[i])
            }
            chunk ^= low
        mask >>= 32
        base += 32
    return graph


def _bit_indices(mask: int) -> list[int]:
    """Indices of the set bits of ``mask``, ascending."""
    out: list[int] = []
    base = 0
    while mask:
        chunk = mask & 0xFFFFFFFF
        while chunk:
            low = chunk & -chunk
            out.append(base + low.bit_length() - 1)
            chunk ^= low
        mask >>= 32
        base += 32
    return out


def move_pairs(fn: Function) -> list[tuple[Reg, Reg]]:
    """Copy-related variable pairs (candidates for coalescing)."""
    pairs = []
    for inst in fn.instructions():
        if (
            inst.opcode is Opcode.MOV
            and inst.dst is not None
            and inst.srcs
            and isinstance(inst.srcs[0], VirtualReg)
        ):
            pairs.append((inst.dst, inst.srcs[0]))
    return pairs
