"""Liveness analysis, live ranges, and the paper's *max-live* metric.

Liveness drives three things in Orion:

* interference-graph construction for the Fig. 4 allocator;
* the liveness of variable sets at each call site (the ``L_ik`` matrix
  of Theorem 1, which prices compressible-stack movements);
* the **max-live** metric of Section 3.3 — "the number of registers
  necessary to hold all simultaneously live variables" — which decides
  the compile-time tuning direction (threshold 32 on Kepler).

Variables here are register objects (virtual or physical); a wide
variable counts ``width`` slots toward max-live.

Internally the dataflow runs over *dense* register numbers and Python
integer bitmasks: every register in the function is assigned a bit, the
per-block use/def/live sets are single ints, and the fixpoint is a
proper worklist (only predecessors of blocks whose live-in changed are
revisited).  The public :class:`LivenessInfo` API still speaks
``set[Reg]`` — the masks are materialised once, after the fixpoint —
so downstream consumers (interference, SSA pruning, the compressible
stack) are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.isa.instructions import Opcode
from repro.isa.registers import PhysReg, Reg, VirtualReg


@dataclass
class LivenessInfo:
    """Per-block live-in/live-out sets plus per-site detail."""

    live_in: dict[str, set[Reg]]
    live_out: dict[str, set[Reg]]
    #: use/def per block (upward-exposed uses; any def)
    uses: dict[str, set[Reg]]
    defs: dict[str, set[Reg]]
    #: maximum number of simultaneously live register *slots*
    max_live: int = 0
    #: variables live across each call site: (block, index) -> set
    live_across_calls: dict[tuple[str, int], set[Reg]] = field(
        default_factory=dict
    )


class _RegNumbering:
    """Dense bit numbering of every register appearing in a function.

    Bits are assigned in first-appearance order over a deterministic
    walk of the instruction stream, so the numbering (and everything
    derived from it) is stable across runs and hash seeds.
    """

    __slots__ = ("index", "regs", "widths", "inst_masks")

    def __init__(self, fn: Function, labels: list[str]) -> None:
        index: dict[Reg, int] = {}
        regs: list[Reg] = []
        # Per-instruction operand masks, recorded during the numbering
        # walk so downstream passes (block use/def masks, interference
        # construction) never re-decode operand lists:
        # label -> [(def_bit, read_mask, move_src_bit, is_phi), ...]
        # aligned with the block's instruction list.  ``def_bit`` is the
        # written register's bit index or -1 (instructions write at most
        # one register); ``move_src_bit`` is the register-MOV source
        # mask, 0 otherwise.
        inst_masks: dict[str, list[tuple[int, int, int, bool]]] = {}
        for label in labels:
            block_masks: list[tuple[int, int, int, bool]] = []
            inst_masks[label] = block_masks
            for inst in fn.blocks[label].instructions:
                read_mask = 0
                for reg in inst.regs_read():
                    i = index.get(reg)
                    if i is None:
                        i = index[reg] = len(regs)
                        regs.append(reg)
                    read_mask |= 1 << i
                def_bit = -1
                dst = inst.dst
                if dst is not None:
                    i = index.get(dst)
                    if i is None:
                        i = index[dst] = len(regs)
                        regs.append(dst)
                    def_bit = i
                move_src_bit = 0
                if (
                    inst.opcode is Opcode.MOV
                    and inst.srcs
                    and isinstance(inst.srcs[0], VirtualReg)
                ):
                    move_src_bit = 1 << index[inst.srcs[0]]
                block_masks.append(
                    (
                        def_bit,
                        read_mask,
                        move_src_bit,
                        inst.opcode is Opcode.PHI,
                    )
                )
        self.index = index
        self.regs = regs
        self.widths = [r.width for r in regs]
        self.inst_masks = inst_masks

    def bit(self, reg: Reg) -> int:
        return 1 << self.index[reg]

    def materialize(self, mask: int) -> set[Reg]:
        """Expand a bitmask back into a ``set[Reg]``."""
        out: set[Reg] = set()
        regs = self.regs
        base = 0
        while mask:
            chunk = mask & 0xFFFFFFFF
            while chunk:
                low = chunk & -chunk
                out.add(regs[base + low.bit_length() - 1])
                chunk ^= low
            mask >>= 32
            base += 32
        return out

    def slots(self, mask: int) -> int:
        """Total register slots of a mask (widths summed)."""
        total = 0
        widths = self.widths
        base = 0
        while mask:
            chunk = mask & 0xFFFFFFFF
            while chunk:
                low = chunk & -chunk
                total += widths[base + low.bit_length() - 1]
                chunk ^= low
            mask >>= 32
            base += 32
        return total


def _block_masks(
    fn: Function, label: str, numbering: _RegNumbering
) -> tuple[int, int]:
    """(upward-exposed uses, defs) of one block, as bitmasks."""
    uses = 0
    defs = 0
    for def_bit, read_mask, _, is_phi in numbering.inst_masks[label]:
        # φ uses happen on the predecessor edge, not here; the def
        # happens at the top of this block.
        if not is_phi:
            uses |= read_mask & ~defs
        if def_bit >= 0:
            defs |= 1 << def_bit
    return uses, defs


def analyze_liveness_masks(
    fn: Function, cfg: CFG
) -> tuple[
    _RegNumbering, dict[str, int], dict[str, int], dict[str, int], dict[str, int]
]:
    """Mask-domain liveness: ``(numbering, live_in, live_out, uses, defs)``.

    The fixpoint itself, without materialising ``set[Reg]`` results or
    scanning instruction points — interference construction consumes
    the bitmasks directly (same numbering, same dataflow).
    """
    labels = cfg.rpo
    numbering = _RegNumbering(fn, labels)
    bit = numbering.bit

    uses: dict[str, int] = {}
    defs: dict[str, int] = {}
    for label in labels:
        uses[label], defs[label] = _block_masks(fn, label, numbering)

    phi_defs: dict[str, int] = {}
    # φ operands drawn from each incoming edge: succ -> {pred: mask}.
    phi_edge_uses: dict[str, dict[str, int]] = {}
    for label in labels:
        mask = 0
        edges: dict[str, int] = {}
        for p in fn.blocks[label].phis():
            if p.dst is not None:
                mask |= bit(p.dst)
            for pred, op in p.phi_args:
                if _is_reg(op):
                    edges[pred] = edges.get(pred, 0) | bit(op)
        phi_defs[label] = mask
        phi_edge_uses[label] = edges

    live_in: dict[str, int] = {label: 0 for label in labels}
    live_out: dict[str, int] = {label: 0 for label in labels}

    # Worklist fixpoint: seed with every block in reverse RPO (one
    # backward sweep converges most acyclic regions immediately), then
    # revisit only the predecessors of blocks whose live-in grew.
    pending = list(reversed(labels))
    in_pending = set(pending)
    preds = cfg.preds
    succs = cfg.succs
    while pending:
        label = pending.pop()
        in_pending.discard(label)
        out = 0
        for succ in succs[label]:
            if succ not in live_in:
                continue
            # live-in of successor minus its φ defs, plus the operands
            # its φs draw from *this* edge.
            out |= live_in[succ] & ~phi_defs[succ]
            out |= phi_edge_uses[succ].get(label, 0)
        # φ destinations are defined at the block top, so they are
        # live-in here without forcing liveness into predecessors
        # (the subtraction above removes them on the way up).
        new_in = uses[label] | (out & ~defs[label]) | phi_defs[label]
        if out != live_out[label] or new_in != live_in[label]:
            live_out[label] = out
            if new_in != live_in[label]:
                live_in[label] = new_in
                for pred in preds[label]:
                    if pred in live_in and pred not in in_pending:
                        in_pending.add(pred)
                        pending.append(pred)

    return numbering, live_in, live_out, uses, defs


def analyze_liveness(fn: Function, cfg: CFG | None = None) -> LivenessInfo:
    """Backward dataflow liveness over the function's CFG.

    φ semantics: a φ's operands are live-out of the corresponding
    predecessor; its destination is defined at the block top.
    """
    cfg = cfg or CFG(fn)
    numbering, live_in, live_out, uses, defs = analyze_liveness_masks(fn, cfg)
    info = LivenessInfo(
        live_in={l: numbering.materialize(m) for l, m in live_in.items()},
        live_out={l: numbering.materialize(m) for l, m in live_out.items()},
        uses={l: numbering.materialize(m) for l, m in uses.items()},
        defs={l: numbering.materialize(m) for l, m in defs.items()},
    )
    _scan_points(fn, cfg, info, numbering, live_out)
    return info


def _is_reg(op: object) -> bool:
    return isinstance(op, (PhysReg, VirtualReg))


def _scan_points(
    fn: Function,
    cfg: CFG,
    info: LivenessInfo,
    numbering: _RegNumbering,
    live_out: dict[str, int],
) -> None:
    """Walk each block backwards recording max-live and call-site sets."""
    bit = numbering.bit
    max_live = 0
    for label in cfg.rpo:
        block = fn.blocks[label]
        live = live_out[label]
        slots = numbering.slots(live)
        max_live = max(max_live, slots)
        for idx in range(len(block.instructions) - 1, -1, -1):
            inst = block.instructions[idx]
            if inst.is_call:
                # Variables live *across* the call: live after it, minus
                # the call's own result.  These are the slots the
                # compressible stack must preserve (Theorem 1's L_ik).
                across = live
                for reg in inst.regs_written():
                    across &= ~bit(reg)
                info.live_across_calls[(label, idx)] = numbering.materialize(
                    across
                )
            for reg in inst.regs_written():
                b = bit(reg)
                if live & b:
                    live &= ~b
                    slots -= reg.width
            if inst.opcode is not Opcode.PHI:
                # φ operands live on edges; handled via live_out of preds.
                for reg in inst.regs_read():
                    b = bit(reg)
                    if not live & b:
                        live |= b
                        slots += reg.width
            max_live = max(max_live, slots)
    info.max_live = max_live


def max_live(fn: Function) -> int:
    """The paper's max-live metric, in 32-bit register slots."""
    return analyze_liveness(fn).max_live


def instruction_liveness(
    fn: Function, cfg: CFG | None = None
) -> dict[tuple[str, int], set[Reg]]:
    """Live-after set for every instruction (block label, index).

    Used by interference construction and by the spiller to place
    reloads.  φ operands are attributed to predecessor edges.
    """
    cfg = cfg or CFG(fn)
    info = analyze_liveness(fn, cfg)
    result: dict[tuple[str, int], set[Reg]] = {}
    for label in cfg.rpo:
        block = fn.blocks[label]
        live: set[Reg] = set(info.live_out[label])
        for idx in range(len(block.instructions) - 1, -1, -1):
            inst = block.instructions[idx]
            result[(label, idx)] = set(live)
            for reg in inst.regs_written():
                live.discard(reg)
            if inst.opcode is not Opcode.PHI:
                live.update(inst.regs_read())
    return result
