"""Liveness analysis, live ranges, and the paper's *max-live* metric.

Liveness drives three things in Orion:

* interference-graph construction for the Fig. 4 allocator;
* the liveness of variable sets at each call site (the ``L_ik`` matrix
  of Theorem 1, which prices compressible-stack movements);
* the **max-live** metric of Section 3.3 — "the number of registers
  necessary to hold all simultaneously live variables" — which decides
  the compile-time tuning direction (threshold 32 on Kepler).

Variables here are register objects (virtual or physical); a wide
variable counts ``width`` slots toward max-live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.isa.instructions import Opcode
from repro.isa.registers import PhysReg, Reg, VirtualReg


@dataclass
class LivenessInfo:
    """Per-block live-in/live-out sets plus per-site detail."""

    live_in: dict[str, set[Reg]]
    live_out: dict[str, set[Reg]]
    #: use/def per block (upward-exposed uses; any def)
    uses: dict[str, set[Reg]]
    defs: dict[str, set[Reg]]
    #: maximum number of simultaneously live register *slots*
    max_live: int = 0
    #: variables live across each call site: (block, index) -> set
    live_across_calls: dict[tuple[str, int], set[Reg]] = field(
        default_factory=dict
    )


def _block_use_def(fn: Function, label: str) -> tuple[set[Reg], set[Reg]]:
    uses: set[Reg] = set()
    defs: set[Reg] = set()
    for inst in fn.blocks[label].instructions:
        if inst.opcode is Opcode.PHI:
            # φ uses happen on the predecessor edge, not here; the def
            # happens at the top of this block.
            defs.update(inst.regs_written())
            continue
        for reg in inst.regs_read():
            if reg not in defs:
                uses.add(reg)
        defs.update(inst.regs_written())
    return uses, defs


def analyze_liveness(fn: Function, cfg: CFG | None = None) -> LivenessInfo:
    """Backward dataflow liveness over the function's CFG.

    φ semantics: a φ's operands are live-out of the corresponding
    predecessor; its destination is defined at the block top.
    """
    cfg = cfg or CFG(fn)
    labels = cfg.rpo
    uses: dict[str, set[Reg]] = {}
    defs: dict[str, set[Reg]] = {}
    for label in labels:
        uses[label], defs[label] = _block_use_def(fn, label)

    phi_defs: dict[str, set[Reg]] = {
        label: {p.dst for p in fn.blocks[label].phis() if p.dst is not None}
        for label in labels
    }

    live_in: dict[str, set[Reg]] = {label: set() for label in labels}
    live_out: dict[str, set[Reg]] = {label: set() for label in labels}

    changed = True
    while changed:
        changed = False
        for label in reversed(labels):
            out: set[Reg] = set()
            for succ in cfg.succs[label]:
                if succ not in live_in:
                    continue
                # live-in of successor minus its φ defs, plus the operands
                # its φs draw from *this* edge.
                out |= live_in[succ] - phi_defs[succ]
                for p in fn.blocks[succ].phis():
                    for pred, op in p.phi_args:
                        if pred == label and _is_reg(op):
                            out.add(op)
            # φ destinations are defined at the block top, so they are
            # live-in here without forcing liveness into predecessors
            # (the subtraction above removes them on the way up).
            new_in = uses[label] | (out - defs[label]) | phi_defs[label]
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    info = LivenessInfo(live_in=live_in, live_out=live_out, uses=uses, defs=defs)
    _scan_points(fn, cfg, info)
    return info


def _is_reg(op: object) -> bool:
    return isinstance(op, (PhysReg, VirtualReg))


def _scan_points(fn: Function, cfg: CFG, info: LivenessInfo) -> None:
    """Walk each block backwards recording max-live and call-site sets."""
    max_live = 0
    for label in cfg.rpo:
        block = fn.blocks[label]
        live: set[Reg] = set(info.live_out[label])
        max_live = max(max_live, _slots(live))
        for idx in range(len(block.instructions) - 1, -1, -1):
            inst = block.instructions[idx]
            if inst.is_call:
                # Variables live *across* the call: live after it, minus
                # the call's own result.  These are the slots the
                # compressible stack must preserve (Theorem 1's L_ik).
                info.live_across_calls[(label, idx)] = set(live) - set(
                    inst.regs_written()
                )
            for reg in inst.regs_written():
                live.discard(reg)
            if inst.opcode is Opcode.PHI:
                # φ operands live on edges; handled via live_out of preds.
                pass
            else:
                live.update(inst.regs_read())
            max_live = max(max_live, _slots(live))
    info.max_live = max_live


def _slots(regs: set[Reg]) -> int:
    return sum(r.width for r in regs)


def max_live(fn: Function) -> int:
    """The paper's max-live metric, in 32-bit register slots."""
    return analyze_liveness(fn).max_live


def instruction_liveness(
    fn: Function, cfg: CFG | None = None
) -> dict[tuple[str, int], set[Reg]]:
    """Live-after set for every instruction (block label, index).

    Used by interference construction and by the spiller to place
    reloads.  φ operands are attributed to predecessor edges.
    """
    cfg = cfg or CFG(fn)
    info = analyze_liveness(fn, cfg)
    result: dict[tuple[str, int], set[Reg]] = {}
    for label in cfg.rpo:
        block = fn.blocks[label]
        live: set[Reg] = set(info.live_out[label])
        for idx in range(len(block.instructions) - 1, -1, -1):
            inst = block.instructions[idx]
            result[(label, idx)] = set(live)
            for reg in inst.regs_written():
                live.discard(reg)
            if inst.opcode is not Opcode.PHI:
                live.update(inst.regs_read())
    return result
