"""IR containers: basic blocks, functions, and modules.

The IR is the assembly-level program representation Orion's middle end
manipulates: a :class:`Module` holds kernels and device functions; each
:class:`Function` is an ordered collection of labelled
:class:`BasicBlock` objects whose final instruction is a terminator.

Register operands are :class:`~repro.isa.registers.VirtualReg` before
allocation and :class:`~repro.isa.registers.PhysReg` after; all passes
work on either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, Opcode, TERMINATORS
from repro.isa.registers import PhysReg, Reg, VirtualReg


@dataclass
class BasicBlock:
    """A labelled straight-line instruction sequence.

    The last instruction must be a terminator for the block (and hence
    the containing function) to validate.  ``successors`` is derived from
    the terminator's targets; fall-through is always explicit.
    """

    label: str
    instructions: list[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> list[str]:
        term = self.terminator
        if term is None:
            return []
        return list(term.targets)

    def phis(self) -> list[Instruction]:
        return [i for i in self.instructions if i.opcode is Opcode.PHI]

    def non_phi_instructions(self) -> list[Instruction]:
        return [i for i in self.instructions if i.opcode is not Opcode.PHI]

    def append(self, inst: Instruction) -> None:
        self.instructions.append(inst)

    def copy(self) -> "BasicBlock":
        return BasicBlock(self.label, [i.copy() for i in self.instructions])

    def __str__(self) -> str:
        body = "\n".join(f"    {inst}" for inst in self.instructions)
        return f"{self.label}:\n{body}"


class Function:
    """A kernel or device function.

    Device functions receive their arguments in virtual registers
    ``%v0..%v(n-1)`` (before allocation) and return at most one value via
    ``RET``.  Kernels read their launch parameters from the ``param``
    memory space and terminate with ``EXIT``.
    """

    def __init__(
        self,
        name: str,
        is_kernel: bool,
        num_args: int = 0,
        shared_bytes: int = 0,
        returns_value: bool = False,
    ) -> None:
        if num_args and is_kernel:
            raise ValueError("kernels take parameters via param space, not args")
        self.name = name
        self.is_kernel = is_kernel
        self.num_args = num_args
        #: User-declared shared memory per block (the "Smem" column of the
        #: paper's Table 2), in bytes.  The allocator may add more for
        #: spilled variables.
        self.shared_bytes = shared_bytes
        self.returns_value = returns_value
        self.blocks: dict[str, BasicBlock] = {}
        self._block_order: list[str] = []
        self._next_vreg = 0
        self._next_label = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_block(self, label: str | None = None) -> BasicBlock:
        if label is None:
            label = self.fresh_label()
        if label in self.blocks:
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label)
        self.blocks[label] = block
        self._block_order.append(label)
        return block

    def fresh_label(self) -> str:
        while True:
            label = f"BB{self._next_label}"
            self._next_label += 1
            if label not in self.blocks:
                return label

    def new_vreg(self, width: int = 1) -> VirtualReg:
        reg = VirtualReg(self._next_vreg, width)
        self._next_vreg = self._next_vreg + 1
        return reg

    def reserve_vregs(self, count: int) -> None:
        """Make sure ``new_vreg`` never hands out indices below ``count``."""
        self._next_vreg = max(self._next_vreg, count)

    @property
    def entry(self) -> BasicBlock:
        if not self._block_order:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[self._block_order[0]]

    @property
    def block_order(self) -> list[str]:
        return list(self._block_order)

    def ordered_blocks(self) -> list[BasicBlock]:
        return [self.blocks[label] for label in self._block_order]

    def instructions(self) -> list[Instruction]:
        """All instructions in block order (convenience for analyses)."""
        return [
            inst for block in self.ordered_blocks() for inst in block.instructions
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def all_regs(self) -> set[Reg]:
        regs: set[Reg] = set()
        for inst in self.instructions():
            regs.update(inst.regs_read())
            regs.update(inst.regs_written())
        return regs

    def max_phys_slot(self) -> int:
        """One past the highest physical register slot used (0 if none)."""
        top = 0
        for reg in self.all_regs():
            if isinstance(reg, PhysReg):
                top = max(top, reg.index + reg.width)
        return top

    def static_calls(self) -> list[Instruction]:
        return [inst for inst in self.instructions() if inst.is_call]

    def validate(self) -> None:
        """Raise ``ValueError`` on malformed control flow."""
        if not self._block_order:
            raise ValueError(f"function {self.name} has no blocks")
        for block in self.ordered_blocks():
            if block.terminator is None:
                raise ValueError(
                    f"block {block.label} of {self.name} lacks a terminator"
                )
            for inst in block.instructions[:-1]:
                if inst.is_terminator:
                    raise ValueError(
                        f"terminator mid-block in {self.name}:{block.label}"
                    )
            for target in block.successors:
                if target not in self.blocks:
                    raise ValueError(
                        f"branch to unknown block {target!r} in {self.name}"
                    )
            term = block.terminator
            if self.is_kernel and term.opcode is Opcode.RET:
                raise ValueError(f"kernel {self.name} must EXIT, not RET")
            if not self.is_kernel and term.opcode is Opcode.EXIT:
                raise ValueError(f"device function {self.name} must RET, not EXIT")

    def copy(self) -> "Function":
        clone = Function(
            self.name,
            self.is_kernel,
            num_args=self.num_args,
            shared_bytes=self.shared_bytes,
            returns_value=self.returns_value,
        )
        for label in self._block_order:
            block = clone.add_block(label)
            block.instructions = [i.copy() for i in self.blocks[label].instructions]
        clone._next_vreg = self._next_vreg
        clone._next_label = self._next_label
        return clone

    def __str__(self) -> str:
        from repro.isa.assembly import format_function

        return format_function(self)


class Module:
    """A compilation unit: one or more kernels plus device functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}

    def add(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def kernel(self, name: str | None = None) -> Function:
        """The named kernel, or the unique kernel when ``name`` is None."""
        kernels = [f for f in self.functions.values() if f.is_kernel]
        if name is not None:
            fn = self.functions[name]
            if not fn.is_kernel:
                raise ValueError(f"{name!r} is not a kernel")
            return fn
        if len(kernels) != 1:
            raise ValueError(
                f"module {self.name} has {len(kernels)} kernels; name one"
            )
        return kernels[0]

    def device_functions(self) -> list[Function]:
        return [f for f in self.functions.values() if not f.is_kernel]

    def validate(self) -> None:
        for fn in self.functions.values():
            fn.validate()
            for inst in fn.instructions():
                if inst.is_call:
                    callee = self.functions.get(inst.callee or "")
                    if callee is None:
                        raise ValueError(
                            f"{fn.name} calls unknown function {inst.callee!r}"
                        )
                    if callee.is_kernel:
                        raise ValueError(
                            f"{fn.name} calls kernel {inst.callee!r}"
                        )
                    # A bare CALL (no operands) is the post-allocation
                    # frame ABI: arguments already sit in the callee's
                    # slots.  Otherwise the arity must match.
                    frame_abi = not inst.srcs and inst.dst is None
                    if not frame_abi and len(inst.srcs) != callee.num_args:
                        raise ValueError(
                            f"{fn.name} passes {len(inst.srcs)} args to "
                            f"{callee.name} (expects {callee.num_args})"
                        )

    def copy(self) -> "Module":
        clone = Module(self.name)
        for fn in self.functions.values():
            clone.add(fn.copy())
        return clone

    def __str__(self) -> str:
        from repro.isa.assembly import format_module

        return format_module(self)


# Re-export for convenience: a terminator check used across passes.
__all__ = ["BasicBlock", "Function", "Module", "TERMINATORS"]
