"""Control-flow graph, dominators, dominance frontiers, and loops.

The Orion front end "analyzes the assembly to extract a high level
intermediate representation (IR) ... includ[ing] the control flow graph
and the call graph" (paper Section 4).  This module provides the CFG
half: predecessor/successor maps, reverse postorder, the
Cooper–Harvey–Kennedy dominator algorithm, dominance frontiers (for SSA
φ placement), and natural-loop detection with per-block nesting depth
(used to weight spill costs and to drive trace generation).
"""

from __future__ import annotations

from repro.ir.function import Function


class CFG:
    """Derived control-flow facts for one function.

    The CFG is a snapshot: rebuild it after passes that add or remove
    blocks or edges.
    """

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.succs: dict[str, list[str]] = {}
        self.preds: dict[str, list[str]] = {label: [] for label in fn.blocks}
        for block in fn.ordered_blocks():
            self.succs[block.label] = block.successors
            for succ in block.successors:
                self.preds[succ].append(block.label)
        self.entry = fn.entry.label
        self.rpo = self._reverse_postorder()
        self._rpo_index = {label: i for i, label in enumerate(self.rpo)}
        self.idom = self._dominators()
        self.frontier = self._dominance_frontiers()
        self.back_edges = self._back_edges()
        self.loop_depth = self._loop_depths()

    # ------------------------------------------------------------------
    def _reverse_postorder(self) -> list[str]:
        seen: set[str] = set()
        order: list[str] = []
        # Iterative DFS with an explicit stack to survive deep CFGs.
        stack: list[tuple[str, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            label, child = stack[-1]
            succs = self.succs[label]
            if child < len(succs):
                stack[-1] = (label, child + 1)
                nxt = succs[child]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(label)
        order.reverse()
        return order

    def reachable(self) -> set[str]:
        return set(self.rpo)

    def _dominators(self) -> dict[str, str | None]:
        """Immediate dominators (Cooper–Harvey–Kennedy iteration)."""
        idom: dict[str, str | None] = {label: None for label in self.rpo}
        idom[self.entry] = self.entry
        changed = True
        while changed:
            changed = False
            for label in self.rpo:
                if label == self.entry:
                    continue
                processed = [
                    p for p in self.preds[label] if idom.get(p) is not None
                ]
                if not processed:
                    continue
                new_idom = processed[0]
                for p in processed[1:]:
                    new_idom = self._intersect(idom, p, new_idom)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True
        idom[self.entry] = None
        return idom

    def _intersect(
        self, idom: dict[str, str | None], a: str, b: str
    ) -> str:
        while a != b:
            while self._rpo_index[a] > self._rpo_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while self._rpo_index[b] > self._rpo_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    def dominates(self, a: str, b: str) -> bool:
        """Whether block ``a`` dominates block ``b``."""
        node: str | None = b
        while node is not None:
            if node == a:
                return True
            node = self.idom[node]
        return False

    def _dominance_frontiers(self) -> dict[str, set[str]]:
        frontier: dict[str, set[str]] = {label: set() for label in self.rpo}
        for label in self.rpo:
            preds = [p for p in self.preds[label] if p in self._rpo_index]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: str | None = pred
                while runner is not None and runner != self.idom[label]:
                    frontier[runner].add(label)
                    runner = self.idom[runner]
        return frontier

    def _back_edges(self) -> list[tuple[str, str]]:
        return [
            (tail, head)
            for tail in self.rpo
            for head in self.succs[tail]
            if head in self._rpo_index and self.dominates(head, tail)
        ]

    def natural_loop(self, back_edge: tuple[str, str]) -> set[str]:
        """Blocks of the natural loop for a back edge (tail, head)."""
        tail, head = back_edge
        body = {head, tail}
        stack = [tail]
        while stack:
            label = stack.pop()
            if label == head:
                continue
            for pred in self.preds[label]:
                if pred not in body and pred in self._rpo_index:
                    body.add(pred)
                    stack.append(pred)
        return body

    def _loop_depths(self) -> dict[str, int]:
        depth = {label: 0 for label in self.rpo}
        for edge in self.back_edges:
            for label in self.natural_loop(edge):
                depth[label] += 1
        return depth

    def critical_edges(self) -> list[tuple[str, str]]:
        """Edges from a multi-successor block into a multi-predecessor block."""
        return [
            (src, dst)
            for src in self.rpo
            for dst in self.succs[src]
            if len(self.succs[src]) > 1 and len(self.preds[dst]) > 1
        ]


def split_critical_edges(fn: Function) -> bool:
    """Insert empty blocks on critical edges (needed before φ elimination).

    Returns True when the function changed.
    """
    from repro.isa.instructions import Opcode, bra

    cfg = CFG(fn)
    edges = cfg.critical_edges()
    if not edges:
        return False
    for src, dst in edges:
        mid = fn.add_block(f"{src}_to_{dst}")
        mid.append(bra(dst))
        term = fn.blocks[src].terminator
        assert term is not None
        term.targets = [mid.label if t == dst else t for t in term.targets]
        # Redirect φ argument labels in the destination block.
        for inst in fn.blocks[dst].instructions:
            if inst.opcode is Opcode.PHI:
                inst.phi_args = [
                    (mid.label if block == src else block, op)
                    for block, op in inst.phi_args
                ]
    return True
