"""Pruned SSA construction and destruction (paper Section 3.2).

Orion "first represent[s] a program in the Static Single Assignment
(SSA) form ... then generate[s] the pruned SSA form to eliminate φ
functions.  Next we start assigning the pruned SSA variables".  We
implement exactly that pipeline:

* :func:`lift_to_virtual` — turn the physical registers of a decoded
  binary into virtual variables (one per register), the starting point
  for re-allocation;
* :func:`construct_ssa` — iterated-dominance-frontier φ placement,
  *pruned* by liveness (a φ is inserted only where the variable is
  live-in), followed by dominator-tree renaming;
* :func:`destruct_ssa` — critical-edge splitting plus parallel-copy
  sequentialisation, leaving a conventional program whose variables are
  the pruned SSA names the allocator colours.
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir.cfg import CFG, split_critical_edges
from repro.ir.function import Function
from repro.ir.liveness import analyze_liveness
from repro.isa.instructions import Imm, Instruction, Opcode, Operand, mov, phi
from repro.isa.registers import PhysReg, Reg, VirtualReg


class SSAError(ValueError):
    """Raised on malformed input (e.g. use of an undefined variable)."""


def lift_to_virtual(fn: Function) -> None:
    """Rewrite every physical register into a virtual one (in place).

    Decoded binaries name storage, not values; lifting ``R<i>`` to
    ``%v<base+i>`` lets SSA renaming split the register into its
    constituent live ranges (webs), which Orion then re-allocates.
    """
    top = max(
        (r.index + 1 for r in fn.all_regs() if isinstance(r, VirtualReg)),
        default=0,
    )

    def lifted(reg: Reg) -> Reg:
        if isinstance(reg, PhysReg):
            return VirtualReg(top + reg.index, reg.width)
        return reg

    max_phys = 0
    for block in fn.ordered_blocks():
        for inst in block.instructions:
            if inst.dst is not None:
                max_phys = max(
                    max_phys,
                    inst.dst.index + 1 if isinstance(inst.dst, PhysReg) else 0,
                )
                inst.dst = lifted(inst.dst)
            inst.srcs = [
                lifted(s) if isinstance(s, PhysReg) else s for s in inst.srcs
            ]
            inst.phi_args = [
                (b, lifted(o) if isinstance(o, PhysReg) else o)
                for b, o in inst.phi_args
            ]
    fn.reserve_vregs(top + max_phys)


def _entry_defined(fn: Function) -> list[VirtualReg]:
    """Variables defined before the first instruction (device-fn args)."""
    return [VirtualReg(i, 1) for i in range(fn.num_args)]


def construct_ssa(fn: Function, allow_undef: bool = False) -> None:
    """Convert ``fn`` to pruned SSA (in place).

    ``allow_undef`` inserts a zero-initialising MOV in the entry block
    for variables read along paths that never defined them (useful when
    lifting foreign binaries); otherwise such a read raises
    :class:`SSAError`.
    """
    cfg = CFG(fn)
    liveness = analyze_liveness(fn, cfg)

    # --- collect definition sites per variable -------------------------
    def_blocks: dict[Reg, set[str]] = defaultdict(set)
    for label in cfg.rpo:
        for inst in fn.blocks[label].instructions:
            for reg in inst.regs_written():
                def_blocks[reg].add(label)
    for arg in _entry_defined(fn):
        def_blocks[arg].add(cfg.entry)

    # --- pruned φ insertion (iterated dominance frontier) --------------
    phi_vars: dict[str, dict[Reg, Instruction]] = defaultdict(dict)
    for var, blocks in def_blocks.items():
        if not isinstance(var, VirtualReg):
            raise SSAError("construct_ssa requires virtual registers; lift first")
        worklist = sorted(blocks)
        placed: set[str] = set()
        while worklist:
            label = worklist.pop()
            for join in cfg.frontier[label]:
                if join in placed:
                    continue
                placed.add(join)
                if var not in liveness.live_in[join]:
                    continue  # pruning: dead here, no φ needed
                node = phi(var, [])
                phi_vars[join][var] = node
                if join not in def_blocks[var]:
                    worklist.append(join)
    for label, mapping in phi_vars.items():
        block = fn.blocks[label]
        block.instructions[0:0] = list(mapping.values())

    # --- renaming -------------------------------------------------------
    children: dict[str, list[str]] = defaultdict(list)
    for label in cfg.rpo:
        parent = cfg.idom[label]
        if parent is not None:
            children[parent].append(label)

    stacks: dict[int, list[VirtualReg]] = defaultdict(list)
    original: dict[Reg, Reg] = {}
    undef_fixups: list[VirtualReg] = []

    for arg in _entry_defined(fn):
        stacks[arg.index].append(arg)

    def current(var: VirtualReg) -> VirtualReg:
        stack = stacks[var.index]
        if not stack:
            if not allow_undef:
                raise SSAError(
                    f"use of undefined variable {var} in {fn.name}"
                )
            fresh = fn.new_vreg(var.width)
            undef_fixups.append(fresh)
            stack.append(fresh)
        return stack[-1]

    def rename_block(label: str) -> None:
        pushed: list[int] = []
        block = fn.blocks[label]
        for inst in block.instructions:
            if inst.opcode is not Opcode.PHI:
                inst.srcs = [
                    current(s) if isinstance(s, VirtualReg) else s
                    for s in inst.srcs
                ]
            if inst.dst is not None and isinstance(inst.dst, VirtualReg):
                fresh = fn.new_vreg(inst.dst.width)
                original[fresh] = original.get(inst.dst, inst.dst)
                stacks[inst.dst.index].append(fresh)
                pushed.append(inst.dst.index)
                inst.dst = fresh
        for succ in cfg.succs[label]:
            for p in fn.blocks[succ].phis():
                var = _phi_original(p, original)
                if isinstance(var, VirtualReg):
                    stack = stacks[var.index]
                    incoming: Operand
                    if stack:
                        incoming = stack[-1]
                    elif allow_undef:
                        incoming = Imm(0)
                    else:
                        raise SSAError(
                            f"φ for {var} in {succ} reads undefined value "
                            f"on edge from {label}"
                        )
                    p.phi_args.append((label, incoming))
        for child in children[label]:
            rename_block(child)
        for index in reversed(pushed):
            stacks[index].pop()

    # Remember each φ's pre-rename variable so predecessors can find it.
    phi_original: dict[int, Reg] = {}
    for label in cfg.rpo:
        for p in fn.blocks[label].phis():
            phi_original[id(p)] = p.dst  # type: ignore[assignment]

    def _phi_original(p: Instruction, renames: dict[Reg, Reg]) -> Reg:
        return phi_original[id(p)]

    rename_block(cfg.entry)

    for fresh in undef_fixups:
        fn.entry.instructions.insert(0, mov(fresh, Imm(0)))


def destruct_ssa(fn: Function) -> None:
    """Eliminate φ functions with parallel copies (in place).

    Critical edges are split first so each φ copy has a unique edge
    block to land in.  Copy groups are sequentialised: copies whose
    destination is still needed as a source are deferred, and cycles are
    broken with a fresh temporary, so the parallel semantics of the φ
    row is preserved exactly.
    """
    split_critical_edges(fn)
    cfg = CFG(fn)

    # Gather per-edge parallel copy groups, then drop the φs.
    copies: dict[str, list[tuple[VirtualReg, Operand]]] = defaultdict(list)
    for label in cfg.rpo:
        block = fn.blocks[label]
        for p in block.phis():
            assert isinstance(p.dst, VirtualReg)
            for pred, op in p.phi_args:
                if op != p.dst:
                    copies[pred].append((p.dst, op))
        block.instructions = [
            i for i in block.instructions if i.opcode is not Opcode.PHI
        ]

    for pred, group in copies.items():
        block = fn.blocks[pred]
        seq = _sequentialize(fn, group)
        insert_at = len(block.instructions)
        if block.terminator is not None:
            insert_at -= 1
        block.instructions[insert_at:insert_at] = seq


def _sequentialize(
    fn: Function, group: list[tuple[VirtualReg, Operand]]
) -> list[Instruction]:
    """Order a parallel copy group, breaking cycles with temporaries."""
    pending = [(dst, src) for dst, src in group if dst != src]
    out: list[Instruction] = []
    while pending:
        emitted = False
        blocked_srcs = {
            src for _, src in pending if isinstance(src, VirtualReg)
        }
        for i, (dst, src) in enumerate(pending):
            if dst not in blocked_srcs:
                out.append(mov(dst, src))
                pending.pop(i)
                emitted = True
                break
        if emitted:
            continue
        # Every destination is still a source: a cycle.  Copy one source
        # into a temporary and redirect its readers.
        dst, src = pending[0]
        assert isinstance(src, VirtualReg)
        temp = fn.new_vreg(src.width)
        out.append(mov(temp, src))
        pending = [
            (d, temp if s == src else s) for d, s in pending
        ]
    return out
