"""Function inlining (the nvcc preprocessing step the paper leans on).

"In GPU program compilation, function calls are inlined as much as
possible since there is a local stack for every thread ... However,
there is still a non-trivial number of function calls that are not
practical to be inlined" (paper Section 4, Table 2 discussion).  This
pass models that policy: leaf-ish device functions below a size
threshold are inlined into their callers; larger or deeply-nested ones
stay as calls — those are exactly the calls Orion's compressible stack
then has to handle.

Inlining one call site:

1. the callee's blocks are cloned with fresh labels and every virtual
   register renumbered into the caller's namespace;
2. argument registers map to the call's operands (immediates propagate
   directly);
3. each RET becomes a MOV into the call's destination (when any) plus a
   branch to the split-off continuation block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.callgraph import CallGraph
from repro.ir.function import Function, Module
from repro.isa.instructions import Imm, Instruction, Opcode, Operand, mov
from repro.isa.registers import Reg, VirtualReg


@dataclass
class InlineReport:
    """What the inliner did to a module."""

    inlined_sites: int = 0
    remaining_sites: int = 0
    removed_functions: list[str] = field(default_factory=list)
    #: (caller, callee) pairs left as real calls, with the reason
    skipped: list[tuple[str, str, str]] = field(default_factory=list)


def function_size(fn: Function) -> int:
    return sum(len(b.instructions) for b in fn.ordered_blocks())


def inline_module(
    module: Module,
    size_threshold: int = 24,
    max_growth: int = 512,
    drop_dead_functions: bool = True,
) -> InlineReport:
    """Inline small device functions into their callers (in place).

    ``size_threshold`` bounds the callee size (instructions) eligible
    for inlining; ``max_growth`` caps how large any caller may grow,
    modelling the "not practical to inline" limit.  Functions without
    remaining callers are dropped when ``drop_dead_functions``.
    """
    report = InlineReport()
    # Bottom-up so inner calls are resolved before outer ones.
    order = CallGraph(module).bottom_up_order()
    for name in order:
        caller = module.functions[name]
        changed = True
        while changed:
            changed = False
            for block in caller.ordered_blocks():
                for index, inst in enumerate(block.instructions):
                    if not inst.is_call:
                        continue
                    callee = module.functions[inst.callee]
                    size = function_size(callee)
                    if size > size_threshold:
                        report.skipped.append(
                            (name, callee.name, "too large")
                        )
                        continue
                    if function_size(caller) + size > max_growth:
                        report.skipped.append(
                            (name, callee.name, "caller growth cap")
                        )
                        continue
                    _inline_site(caller, block.label, index, callee)
                    report.inlined_sites += 1
                    changed = True
                    break
                if changed:
                    break

    if drop_dead_functions:
        graph = CallGraph(module)
        kernels = [f.name for f in module.functions.values() if f.is_kernel]
        live = set()
        for kernel in kernels:
            live |= graph.reachable(kernel)
        for name in list(module.functions):
            if name not in live:
                del module.functions[name]
                report.removed_functions.append(name)

    report.remaining_sites = sum(
        1 for fn in module.functions.values() for i in fn.instructions() if i.is_call
    )
    return report


def _inline_site(
    caller: Function, block_label: str, index: int, callee: Function
) -> None:
    """Splice one callee body into the caller at (block, index)."""
    block = caller.blocks[block_label]
    call = block.instructions[index]
    assert call.is_call

    # 1. Split the continuation off the call block.
    continuation = caller.add_block(caller.fresh_label())
    continuation.instructions = block.instructions[index + 1 :]
    block.instructions = block.instructions[:index]

    # 2. Clone the callee with fresh labels and registers.  Arguments
    # are materialised into fresh registers at the call point: the
    # callee may overwrite its parameter registers, and an argument may
    # be an immediate.
    label_map = {
        label: caller.fresh_label() for label in callee.block_order
    }
    reg_map: dict[Reg, Operand] = {}
    for i, arg in enumerate(call.srcs):
        fresh = caller.new_vreg(1)
        block.append(mov(fresh, arg))
        reg_map[VirtualReg(i, 1)] = fresh

    def mapped(operand: Operand) -> Operand:
        if isinstance(operand, VirtualReg):
            if operand not in reg_map:
                reg_map[operand] = caller.new_vreg(operand.width)
            return reg_map[operand]
        return operand

    for label in callee.block_order:
        clone = caller.add_block(label_map[label])
        for inst in callee.blocks[label].instructions:
            copy = inst.copy()
            if copy.opcode is Opcode.RET:
                tail: list[Instruction] = []
                if call.dst is not None and copy.srcs:
                    tail.append(mov(call.dst, mapped(copy.srcs[0])))
                tail.append(Instruction(Opcode.BRA, targets=[continuation.label]))
                clone.instructions.extend(tail)
                continue
            copy.srcs = [mapped(s) for s in copy.srcs]
            copy.phi_args = [
                (label_map.get(b, b), mapped(o)) for b, o in copy.phi_args
            ]
            if copy.dst is not None:
                copy.dst = mapped(copy.dst)  # type: ignore[assignment]
            copy.targets = [label_map.get(t, t) for t in copy.targets]
            clone.append(copy)

    # 3. Jump from the call point into the cloned entry.
    block.append(
        Instruction(Opcode.BRA, targets=[label_map[callee.entry.label]])
    )
