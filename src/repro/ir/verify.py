"""Machine verification of ORAS modules.

Compilers that rewrite binaries need a safety net beyond unit tests:
the verifier statically checks a module — before or after allocation —
for the structural properties every later stage (and the hardware)
assumes.  It is used by the test suite after every allocation and is
cheap enough to run inside the compiler pipeline.

Checks on any module:

* control flow: every block ends in exactly one terminator, targets
  exist, kernels EXIT and device functions RET, call arity matches;
* operand shape: destinations are registers, memory ops carry a space,
  comparisons carry a predicate, S2R names a special register;
* definedness: on every path from entry, a register is written before
  it is read (device-function arguments count as defined at entry);

additional checks on physically-allocated modules:

* wide values sit at aligned base registers;
* no register index exceeds the declared budget;
* calls follow the frame ABI (no operands);
* no virtual registers remain;
* allocation soundness: liveness is recomputed over physical storage —
  register slots plus statically-addressed local/shared ranges — and any
  write whose footprint overlaps a *different* value that is still live
  is flagged as a clobber;
* compressible-stack invariants: no value may be live across a call
  while overlapping the callee's register window, and (when the
  allocator's :class:`~repro.regalloc.stack.InterprocResult` is
  supplied) every planned save move must be mirrored by a restore after
  the call, in reverse order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.ir.cfg import CFG
from repro.ir.function import Function, Module
from repro.isa.instructions import Instruction, MemSpace, Opcode
from repro.isa.registers import PhysReg, Reg, VirtualReg, is_aligned

if TYPE_CHECKING:
    from repro.regalloc.stack import InterprocResult

#: A storage value tracked by the physical-liveness analysis: either a
#: register value (a :class:`PhysReg` — base slot plus width), or a
#: statically-addressed memory range ``("mem", space, offset, nbytes)``.
StorageValue = "PhysReg | tuple[str, str, int, int]"

#: Memory spaces whose statically-addressed ranges are thread-private
#: storage the allocator manages (spill slots live here).
_TRACKED_SPACES = (MemSpace.LOCAL, MemSpace.SHARED)


@dataclass(frozen=True)
class VerifyIssue:
    """One verifier finding."""

    function: str
    block: str
    index: int  # instruction index within the block; -1 for block-level
    message: str

    def __str__(self) -> str:
        where = f"{self.function}:{self.block}"
        if self.index >= 0:
            where += f"[{self.index}]"
        return f"{where}: {self.message}"


class VerificationError(ValueError):
    """Raised by :func:`verify_module` when issues were found."""

    def __init__(self, issues: list[VerifyIssue]) -> None:
        super().__init__(
            "module failed verification:\n"
            + "\n".join(f"  - {issue}" for issue in issues)
        )
        self.issues = issues


@dataclass
class _Verifier:
    module: Module
    physical: bool
    reg_budget: int | None
    interproc: "InterprocResult | None" = None
    issues: list[VerifyIssue] = field(default_factory=list)

    def report(self, fn: Function, block: str, index: int, message: str) -> None:
        self.issues.append(VerifyIssue(fn.name, block, index, message))

    # ------------------------------------------------------------------
    def run(self) -> list[VerifyIssue]:
        try:
            self.module.validate()
        except ValueError as exc:
            self.issues.append(VerifyIssue("<module>", "<module>", -1, str(exc)))
            return self.issues
        if self.physical:
            self._frame_bases, self._frame_windows = self._call_frame_facts()
        for fn in self.module.functions.values():
            self._check_function(fn)
        return self.issues

    def _check_function(self, fn: Function) -> None:
        for block in fn.ordered_blocks():
            for index, inst in enumerate(block.instructions):
                self._check_instruction(fn, block.label, index, inst)
        self._check_definedness(fn)
        if self.physical:
            self._check_slot_liveness(fn)
            self._check_stack_protocol(fn)

    # ------------------------------------------------------------------
    def _check_instruction(
        self, fn: Function, block: str, index: int, inst: Instruction
    ) -> None:
        op = inst.opcode
        if inst.is_memory and inst.space is None:
            self.report(fn, block, index, f"{op.value} without a memory space")
        if inst.space is MemSpace.PARAM and op is Opcode.ST:
            self.report(fn, block, index, "store to read-only param space")
        if op in (Opcode.ISET, Opcode.FSET) and inst.cmp is None:
            self.report(fn, block, index, "comparison without a predicate")
        if op is Opcode.S2R and inst.special is None:
            self.report(fn, block, index, "S2R without a special register")
        if op is Opcode.CBR and len(inst.targets) != 2:
            self.report(fn, block, index, "CBR needs two targets")
        if op is Opcode.PHI:
            self.report(fn, block, index, "SSA φ survived past destruction")

        for reg in list(inst.regs_read()) + list(inst.regs_written()):
            self._check_register(fn, block, index, reg)

        if self.physical and inst.is_call:
            if inst.srcs or inst.dst is not None:
                self.report(
                    fn, block, index,
                    "value-ABI call in physically-allocated code",
                )

    def _check_register(
        self, fn: Function, block: str, index: int, reg: Reg
    ) -> None:
        if isinstance(reg, PhysReg):
            if not is_aligned(reg.index, reg.width):
                self.report(
                    fn, block, index, f"misaligned wide register {reg}"
                )
            if self.reg_budget is not None and reg.index + reg.width > self.reg_budget:
                self.report(
                    fn, block, index,
                    f"{reg} exceeds the {self.reg_budget}-slot budget",
                )
        elif self.physical:
            self.report(
                fn, block, index, f"virtual register {reg} after allocation"
            )

    # ------------------------------------------------------------------
    def _check_definedness(self, fn: Function) -> None:
        """Forward may-undefined analysis: flag reads never preceded by
        a write on some path.

        Physical code is exempt: register reuse makes storage-level
        definedness meaningless there (saves/restores read slots the
        analysis cannot attribute), and the functional interpreter
        covers it dynamically.
        """
        if self.physical:
            return
        cfg = CFG(fn)
        # An argument register is defined at entry at whatever width the
        # body reads it: a 64/96/128-bit argument arrives as %vi.wN, and
        # VirtualReg equality includes the width, so seeding only the
        # 32-bit form would flag every wide argument as undefined.
        entry_defined: set[Reg] = {
            VirtualReg(i, 1) for i in range(fn.num_args)
        }
        entry_defined.update(
            reg
            for reg in fn.all_regs()
            if isinstance(reg, VirtualReg) and reg.index < fn.num_args
        )
        defined_out: dict[str, set[Reg]] = {}
        # Forward dataflow: definitely-defined at block entry.
        all_regs = fn.all_regs()
        full = set(all_regs)
        defined_in = {label: set(full) for label in cfg.rpo}
        defined_in[cfg.entry] = set(entry_defined)
        changed = True
        while changed:
            changed = False
            for label in cfg.rpo:
                preds = [p for p in cfg.preds[label] if p in defined_out]
                if label == cfg.entry:
                    incoming = set(entry_defined)
                else:
                    if preds:
                        incoming = set.intersection(
                            *(defined_out[p] for p in preds)
                        )
                    else:
                        incoming = set()
                defined = set(incoming)
                for inst in fn.blocks[label].instructions:
                    defined.update(inst.regs_written())
                if defined_out.get(label) != defined or defined_in[label] != incoming:
                    defined_in[label] = incoming
                    defined_out[label] = defined
                    changed = True
        for label in cfg.rpo:
            defined = set(defined_in[label])
            for index, inst in enumerate(fn.blocks[label].instructions):
                if inst.opcode is not Opcode.PHI:
                    for reg in inst.regs_read():
                        if reg not in defined:
                            self.report(
                                fn, label, index,
                                f"{reg} may be read before definition",
                            )
                defined.update(inst.regs_written())

    # ------------------------------------------------------------------
    # Allocation soundness: liveness over physical storage
    # ------------------------------------------------------------------
    def _call_frame_facts(self) -> tuple[dict[str, int], dict[str, set[int]]]:
        """Per-function frame base and written-slot window.

        The frame ABI gives every device function a contiguous register
        window starting at its *base*; absent the allocator's own
        bookkeeping the base is recovered as the lowest slot the function
        references (exact whenever it matters: a value-returning callee
        always writes its base slot).  The *window* is every slot the
        function — or anything it can transitively call — writes.
        """
        bases: dict[str, int] = {}
        writes: dict[str, set[int]] = {}
        callees: dict[str, set[str]] = {}
        for name, fn in self.module.functions.items():
            lowest: int | None = None
            written: set[int] = set()
            names: set[str] = set()
            for inst in fn.instructions():
                for reg in (*inst.regs_read(), *inst.regs_written()):
                    if isinstance(reg, PhysReg) and (
                        lowest is None or reg.index < lowest
                    ):
                        lowest = reg.index
                for reg in inst.regs_written():
                    if isinstance(reg, PhysReg):
                        written.update(reg.slots)
                if inst.is_call and inst.callee:
                    names.add(inst.callee)
            bases[name] = 0 if fn.is_kernel else (lowest or 0)
            writes[name] = written
            callees[name] = names
        if self.interproc is not None:
            bases.update(self.interproc.bases)

        windows: dict[str, set[int]] = {}

        def window(name: str, trail: frozenset[str]) -> set[int]:
            if name in windows:
                return windows[name]
            if name in trail or name not in writes:
                return set()
            out = set(writes[name])
            for callee in callees[name]:
                out |= window(callee, trail | {name})
            windows[name] = out
            return out

        for name in self.module.functions:
            window(name, frozenset())
        return bases, windows

    def _check_slot_liveness(self, fn: Function) -> None:
        """Flag writes that clobber a value still live in their slots.

        Liveness is recomputed at storage granularity: a value is a
        (base slot, width) register range or a statically-addressed
        local/shared byte range, and it stays live from each read back to
        the exact-identity write that defines it.  A write whose
        footprint overlaps a *different* live value destroys data some
        path still reads — the defining miscompile of a register
        allocator — so every hit is an error.
        """
        cfg = CFG(fn)
        live_in: dict[str, set] = {label: set() for label in cfg.rpo}
        changed = True
        while changed:
            changed = False
            for label in reversed(cfg.rpo):
                live_out: set = set()
                for succ in cfg.succs[label]:
                    live_out |= live_in[succ]
                new_in = self._walk_block(
                    fn, fn.blocks[label], live_out, report=False
                )
                if new_in != live_in[label]:
                    live_in[label] = new_in
                    changed = True
        for label in cfg.rpo:
            live_out = set()
            for succ in cfg.succs[label]:
                live_out |= live_in[succ]
            self._walk_block(fn, fn.blocks[label], live_out, report=True)

    def _walk_block(
        self, fn: Function, block, live_out: set, report: bool
    ) -> set:
        """One backward pass over a block; returns the live-in set."""
        live = set(live_out)
        insts = block.instructions
        for index in range(len(insts) - 1, -1, -1):
            inst = insts[index]
            if inst.is_call and not inst.srcs and inst.dst is None:
                self._step_frame_call(
                    fn, block.label, index, inst, insts, live, report
                )
                continue
            dst = inst.dst
            if isinstance(dst, PhysReg):
                if report:
                    dslots = set(dst.slots)
                    for value in live:
                        if (
                            isinstance(value, PhysReg)
                            and value != dst
                            and dslots.intersection(value.slots)
                        ):
                            self.report(
                                fn, block.label, index,
                                f"write to {dst} clobbers {value}, which is "
                                "still live in the overlapping slot(s)",
                            )
                live.discard(dst)
            mem = self._static_memory_value(inst)
            if mem is not None and inst.opcode is Opcode.ST:
                if report:
                    for value in live:
                        if (
                            isinstance(value, tuple)
                            and value != mem
                            and self._mem_overlaps(value, mem)
                        ):
                            self.report(
                                fn, block.label, index,
                                f"store to {self._describe(mem)} clobbers "
                                f"live value {self._describe(value)}",
                            )
                live.discard(mem)
            for reg in inst.regs_read():
                if isinstance(reg, PhysReg):
                    live.add(reg)
            if mem is not None and inst.opcode is Opcode.LD:
                live.add(mem)
        return live

    def _step_frame_call(
        self,
        fn: Function,
        label: str,
        index: int,
        inst: Instruction,
        insts: list[Instruction],
        live: set,
        report: bool,
    ) -> None:
        """Model a frame-ABI call: kill its result, use its argument
        slots, and require live values to stay clear of the callee's
        register window (the compressible-stack disjointness invariant).
        """
        callee_fn = self.module.functions.get(inst.callee or "")
        if callee_fn is None:
            return
        base = self._frame_bases.get(callee_fn.name, 0)
        window = self._frame_windows.get(callee_fn.name, set())
        # The result fetch — a MOV from the callee's base slot placed
        # immediately after the call — reads a value the call defines.
        nxt = insts[index + 1] if index + 1 < len(insts) else None
        if (
            nxt is not None
            and nxt.opcode is Opcode.MOV
            and nxt.srcs
            and isinstance(nxt.srcs[0], PhysReg)
            and nxt.srcs[0].index == base
        ):
            live.discard(nxt.srcs[0])
        if report:
            for value in live:
                if isinstance(value, PhysReg) and window.intersection(
                    value.slots
                ):
                    self.report(
                        fn, label, index,
                        f"{value} is live across the call to "
                        f"{callee_fn.name!r} but overlaps the callee's "
                        f"register window (base slot {base}); it must be "
                        "saved below the compressed stack height",
                    )
        for i in range(callee_fn.num_args):
            live.add(PhysReg(base + i, 1))

    @staticmethod
    def _static_memory_value(inst: Instruction):
        """The (space, offset, nbytes) value a base-less LD/ST touches.

        Accesses through a base register (promoted shared frames, user
        shared tiles) are dynamically addressed and cannot be tracked
        statically; spill traffic is always base-less.
        """
        if inst.opcode is Opcode.LD:
            if inst.srcs or inst.space not in _TRACKED_SPACES:
                return None
            width = inst.dst.width if isinstance(inst.dst, (PhysReg, VirtualReg)) else 1
        elif inst.opcode is Opcode.ST:
            if len(inst.srcs) != 1 or inst.space not in _TRACKED_SPACES:
                return None
            value = inst.srcs[0]
            width = value.width if isinstance(value, (PhysReg, VirtualReg)) else 1
        else:
            return None
        assert inst.space is not None
        return ("mem", inst.space.value, inst.offset, 4 * width)

    @staticmethod
    def _mem_overlaps(a: tuple, b: tuple) -> bool:
        return a[1] == b[1] and a[2] < b[2] + b[3] and b[2] < a[2] + a[3]

    @staticmethod
    def _describe(value) -> str:
        if isinstance(value, PhysReg):
            return str(value)
        _, space, offset, nbytes = value
        return f"{space}[{offset}..{offset + nbytes - 1}]"

    # ------------------------------------------------------------------
    # Compressible-stack protocol: save/restore balance
    # ------------------------------------------------------------------
    def _check_stack_protocol(self, fn: Function) -> None:
        """Check each planned call site's saves are mirrored by restores.

        Only possible when the allocator hands over its
        :class:`InterprocResult`: the plan says exactly which MOVs are
        compressible-stack saves, removing any ambiguity with ordinary
        caller code.  Rewriting emits, per site: saves, argument copies,
        CALL, optional result fetch, then restores mirroring the saves in
        reverse order — each piece is checked in place.
        """
        if self.interproc is None:
            return
        plans = self.interproc.plans.get(fn.name)
        if not plans:
            return
        caller_base = self.interproc.bases.get(fn.name, 0)
        by_block: dict[str, list] = {}
        for plan in sorted(plans, key=lambda p: (p.block, p.index)):
            by_block.setdefault(plan.block, []).append(plan)
        for label, block_plans in by_block.items():
            block = fn.blocks.get(label)
            if block is None:
                continue
            insts = block.instructions
            calls = [i for i, inst in enumerate(insts) if inst.is_call]
            if len(calls) != len(block_plans):
                self.report(
                    fn, label, -1,
                    f"{len(block_plans)} planned call site(s) but "
                    f"{len(calls)} call(s) after rewriting",
                )
                continue
            for plan, call_idx in zip(block_plans, calls):
                if insts[call_idx].callee != plan.callee:
                    self.report(
                        fn, label, call_idx,
                        f"call to {insts[call_idx].callee!r} where the "
                        f"site plan expects {plan.callee!r}",
                    )
                    continue
                self._check_call_site(
                    fn, label, insts, call_idx, plan, caller_base
                )

    def _check_call_site(
        self,
        fn: Function,
        label: str,
        insts: list[Instruction],
        call_idx: int,
        plan,
        caller_base: int,
    ) -> None:
        callee_base = self.interproc.bases.get(plan.callee, 0)
        # Saves sit before the argument copies (MOVs into the callee
        # window, i.e. dst slot >= callee base).
        pos = call_idx - 1
        while (
            pos >= 0
            and insts[pos].opcode is Opcode.MOV
            and isinstance(insts[pos].dst, PhysReg)
            and insts[pos].dst.index >= callee_base
        ):
            pos -= 1
        for var, from_rel, to_rel in reversed(plan.saves):
            want_dst = PhysReg(caller_base + to_rel, var.width)
            want_src = PhysReg(caller_base + from_rel, var.width)
            if not self._is_mov(insts[pos] if pos >= 0 else None, want_dst, want_src):
                self.report(
                    fn, label, call_idx,
                    f"call to {plan.callee!r}: missing save "
                    f"{want_src} -> {want_dst} before the call",
                )
                return
            pos -= 1
        # Restores mirror the saves in reverse order, after the optional
        # result fetch (a MOV whose source is the callee's base slot).
        pos = call_idx + 1
        if (
            pos < len(insts)
            and insts[pos].opcode is Opcode.MOV
            and insts[pos].srcs
            and isinstance(insts[pos].srcs[0], PhysReg)
            and insts[pos].srcs[0].index == callee_base
        ):
            pos += 1
        for var, from_rel, to_rel in reversed(plan.saves):
            want_dst = PhysReg(caller_base + from_rel, var.width)
            want_src = PhysReg(caller_base + to_rel, var.width)
            if not self._is_mov(insts[pos] if pos < len(insts) else None, want_dst, want_src):
                self.report(
                    fn, label, call_idx,
                    f"call to {plan.callee!r}: save of {want_dst} is not "
                    f"mirrored by a restore {want_src} -> {want_dst} "
                    "after the call (unbalanced save/restore)",
                )
                return
            pos += 1

    @staticmethod
    def _is_mov(inst: Instruction | None, dst: PhysReg, src: PhysReg) -> bool:
        return (
            inst is not None
            and inst.opcode is Opcode.MOV
            and inst.dst == dst
            and len(inst.srcs) == 1
            and inst.srcs[0] == src
        )


def verify_module(
    module: Module,
    physical: bool = False,
    reg_budget: int | None = None,
    interproc: "InterprocResult | None" = None,
) -> list[VerifyIssue]:
    """Collect verification issues (empty list = clean)."""
    return _Verifier(module, physical, reg_budget, interproc).run()


def assert_verified(
    module: Module,
    physical: bool = False,
    reg_budget: int | None = None,
    interproc: "InterprocResult | None" = None,
) -> None:
    """Raise :class:`VerificationError` unless the module is clean."""
    issues = verify_module(
        module, physical=physical, reg_budget=reg_budget, interproc=interproc
    )
    if issues:
        raise VerificationError(issues)
