"""Machine verification of ORAS modules.

Compilers that rewrite binaries need a safety net beyond unit tests:
the verifier statically checks a module — before or after allocation —
for the structural properties every later stage (and the hardware)
assumes.  It is used by the test suite after every allocation and is
cheap enough to run inside the compiler pipeline.

Checks on any module:

* control flow: every block ends in exactly one terminator, targets
  exist, kernels EXIT and device functions RET, call arity matches;
* operand shape: destinations are registers, memory ops carry a space,
  comparisons carry a predicate, S2R names a special register;
* definedness: on every path from entry, a register is written before
  it is read (device-function arguments count as defined at entry);

additional checks on physically-allocated modules:

* wide values sit at aligned base registers;
* no register index exceeds the declared budget;
* calls follow the frame ABI (no operands);
* no virtual registers remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.function import Function, Module
from repro.isa.instructions import Instruction, MemSpace, Opcode
from repro.isa.registers import PhysReg, Reg, VirtualReg, is_aligned


@dataclass(frozen=True)
class VerifyIssue:
    """One verifier finding."""

    function: str
    block: str
    index: int  # instruction index within the block; -1 for block-level
    message: str

    def __str__(self) -> str:
        where = f"{self.function}:{self.block}"
        if self.index >= 0:
            where += f"[{self.index}]"
        return f"{where}: {self.message}"


class VerificationError(ValueError):
    """Raised by :func:`verify_module` when issues were found."""

    def __init__(self, issues: list[VerifyIssue]) -> None:
        super().__init__(
            "module failed verification:\n"
            + "\n".join(f"  - {issue}" for issue in issues)
        )
        self.issues = issues


@dataclass
class _Verifier:
    module: Module
    physical: bool
    reg_budget: int | None
    issues: list[VerifyIssue] = field(default_factory=list)

    def report(self, fn: Function, block: str, index: int, message: str) -> None:
        self.issues.append(VerifyIssue(fn.name, block, index, message))

    # ------------------------------------------------------------------
    def run(self) -> list[VerifyIssue]:
        try:
            self.module.validate()
        except ValueError as exc:
            self.issues.append(VerifyIssue("<module>", "<module>", -1, str(exc)))
            return self.issues
        for fn in self.module.functions.values():
            self._check_function(fn)
        return self.issues

    def _check_function(self, fn: Function) -> None:
        for block in fn.ordered_blocks():
            for index, inst in enumerate(block.instructions):
                self._check_instruction(fn, block.label, index, inst)
        self._check_definedness(fn)

    # ------------------------------------------------------------------
    def _check_instruction(
        self, fn: Function, block: str, index: int, inst: Instruction
    ) -> None:
        op = inst.opcode
        if inst.is_memory and inst.space is None:
            self.report(fn, block, index, f"{op.value} without a memory space")
        if inst.space is MemSpace.PARAM and op is Opcode.ST:
            self.report(fn, block, index, "store to read-only param space")
        if op in (Opcode.ISET, Opcode.FSET) and inst.cmp is None:
            self.report(fn, block, index, "comparison without a predicate")
        if op is Opcode.S2R and inst.special is None:
            self.report(fn, block, index, "S2R without a special register")
        if op is Opcode.CBR and len(inst.targets) != 2:
            self.report(fn, block, index, "CBR needs two targets")
        if op is Opcode.PHI:
            self.report(fn, block, index, "SSA φ survived past destruction")

        for reg in list(inst.regs_read()) + list(inst.regs_written()):
            self._check_register(fn, block, index, reg)

        if self.physical and inst.is_call:
            if inst.srcs or inst.dst is not None:
                self.report(
                    fn, block, index,
                    "value-ABI call in physically-allocated code",
                )

    def _check_register(
        self, fn: Function, block: str, index: int, reg: Reg
    ) -> None:
        if isinstance(reg, PhysReg):
            if not is_aligned(reg.index, reg.width):
                self.report(
                    fn, block, index, f"misaligned wide register {reg}"
                )
            if self.reg_budget is not None and reg.index + reg.width > self.reg_budget:
                self.report(
                    fn, block, index,
                    f"{reg} exceeds the {self.reg_budget}-slot budget",
                )
        elif self.physical:
            self.report(
                fn, block, index, f"virtual register {reg} after allocation"
            )

    # ------------------------------------------------------------------
    def _check_definedness(self, fn: Function) -> None:
        """Forward may-undefined analysis: flag reads never preceded by
        a write on some path.

        Physical code is exempt: register reuse makes storage-level
        definedness meaningless there (saves/restores read slots the
        analysis cannot attribute), and the functional interpreter
        covers it dynamically.
        """
        if self.physical:
            return
        cfg = CFG(fn)
        entry_defined: set[Reg] = {
            VirtualReg(i, 1) for i in range(fn.num_args)
        }
        defined_out: dict[str, set[Reg]] = {}
        # Forward dataflow: definitely-defined at block entry.
        all_regs = fn.all_regs()
        full = set(all_regs)
        defined_in = {label: set(full) for label in cfg.rpo}
        defined_in[cfg.entry] = set(entry_defined)
        changed = True
        while changed:
            changed = False
            for label in cfg.rpo:
                preds = [p for p in cfg.preds[label] if p in defined_out]
                if label == cfg.entry:
                    incoming = set(entry_defined)
                else:
                    if preds:
                        incoming = set.intersection(
                            *(defined_out[p] for p in preds)
                        )
                    else:
                        incoming = set()
                defined = set(incoming)
                for inst in fn.blocks[label].instructions:
                    defined.update(inst.regs_written())
                if defined_out.get(label) != defined or defined_in[label] != incoming:
                    defined_in[label] = incoming
                    defined_out[label] = defined
                    changed = True
        for label in cfg.rpo:
            defined = set(defined_in[label])
            for index, inst in enumerate(fn.blocks[label].instructions):
                if inst.opcode is not Opcode.PHI:
                    for reg in inst.regs_read():
                        if reg not in defined:
                            self.report(
                                fn, label, index,
                                f"{reg} may be read before definition",
                            )
                defined.update(inst.regs_written())


def verify_module(
    module: Module,
    physical: bool = False,
    reg_budget: int | None = None,
) -> list[VerifyIssue]:
    """Collect verification issues (empty list = clean)."""
    return _Verifier(module, physical, reg_budget).run()


def assert_verified(
    module: Module,
    physical: bool = False,
    reg_budget: int | None = None,
) -> None:
    """Raise :class:`VerificationError` unless the module is clean."""
    issues = verify_module(module, physical=physical, reg_budget=reg_budget)
    if issues:
        raise VerificationError(issues)
