"""Mid-level IR: modules, CFGs, SSA, liveness, interference, inlining,
and machine verification."""

from repro.ir.cleanup import (
    CleanupReport,
    cleanup_function,
    cleanup_module,
    eliminate_dead_code,
    propagate_copies,
)
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.inline import InlineReport, inline_module
from repro.ir.verify import (
    VerificationError,
    VerifyIssue,
    assert_verified,
    verify_module,
)

__all__ = [
    "BasicBlock",
    "CleanupReport",
    "cleanup_function",
    "cleanup_module",
    "eliminate_dead_code",
    "propagate_copies",
    "Function",
    "InlineReport",
    "Module",
    "VerificationError",
    "VerifyIssue",
    "assert_verified",
    "inline_module",
    "verify_module",
]
