"""Call graph over a module's functions.

Inter-procedure allocation (paper Section 3.2) needs: which functions a
kernel transitively reaches, the static call sites inside each function,
and a bottom-up (callee-first) processing order.  GPU device code is
non-recursive — every thread owns a small local stack, so nvcc rejects
unbounded recursion — and we enforce the same restriction here.
"""

from __future__ import annotations

from repro.ir.function import Function, Module
from repro.isa.instructions import Instruction


class RecursionError_(ValueError):
    """Raised when the call graph contains a cycle."""


class CallGraph:
    def __init__(self, module: Module) -> None:
        self.module = module
        #: function name -> list of (block label, index, instruction)
        self.call_sites: dict[str, list[tuple[str, int, Instruction]]] = {}
        self.callees: dict[str, set[str]] = {}
        for fn in module.functions.values():
            sites = []
            names: set[str] = set()
            for block in fn.ordered_blocks():
                for idx, inst in enumerate(block.instructions):
                    if inst.is_call:
                        assert inst.callee is not None
                        sites.append((block.label, idx, inst))
                        names.add(inst.callee)
            self.call_sites[fn.name] = sites
            self.callees[fn.name] = names
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.module.functions}

        def visit(name: str, trail: list[str]) -> None:
            color[name] = GREY
            for callee in sorted(self.callees.get(name, ())):
                if callee not in color:
                    continue  # module.validate() reports unknown callees
                if color[callee] == GREY:
                    cycle = " -> ".join(trail + [name, callee])
                    raise RecursionError_(f"recursive device call: {cycle}")
                if color[callee] == WHITE:
                    visit(callee, trail + [name])
            color[name] = BLACK

        for name in self.module.functions:
            if color[name] == WHITE:
                visit(name, [])

    def static_call_count(self, root: str) -> int:
        """Static call sites transitively reachable from ``root``.

        This is the paper's Table 2 "Func" column: e.g. cfd retains 36
        static calls even after nvcc's aggressive inlining.
        """
        return sum(
            len(self.call_sites[name]) for name in self.reachable(root)
        )

    def reachable(self, root: str) -> set[str]:
        """``root`` plus every function it can transitively call."""
        seen = {root}
        stack = [root]
        while stack:
            name = stack.pop()
            for callee in self.callees.get(name, ()):
                if callee in self.module.functions and callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def bottom_up_order(self, root: str | None = None) -> list[str]:
        """Functions ordered callee-first (topological on the acyclic graph)."""
        names = (
            sorted(self.reachable(root)) if root else list(self.module.functions)
        )
        order: list[str] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            for callee in sorted(self.callees.get(name, ())):
                if callee in self.module.functions:
                    visit(callee)
            order.append(name)

        for name in names:
            visit(name)
        return order

    def direct_callers(self, name: str) -> list[str]:
        return [f for f, callees in self.callees.items() if name in callees]


def count_static_calls(module: Module, kernel_name: str) -> int:
    """Convenience wrapper used by the Table 2 harness."""
    return CallGraph(module).static_call_count(kernel_name)
