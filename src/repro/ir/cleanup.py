"""Cleanup passes: copy propagation and dead-code elimination.

Binary rewriting leaves residue: φ elimination and inlining introduce
copies, zero-init fixups and partially-dead loads can become unused
once values are renamed.  These two classic passes tidy the IR before
allocation — fewer live ranges means less register pressure, which is
occupancy (the whole point).

Both passes are local-dataflow conservative:

* **copy propagation** forwards ``MOV d, s`` within a basic block while
  neither side is redefined (memory and special-register reads are
  never forwarded);
* **dead-code elimination** removes instructions whose results are
  never used, iterating to a fixpoint; stores, barriers, calls and
  control flow are always live.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import CFG
from repro.ir.function import Function, Module
from repro.ir.liveness import analyze_liveness
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg, VirtualReg


@dataclass
class CleanupReport:
    copies_propagated: int = 0
    instructions_removed: int = 0


# Opcodes with observable effects beyond their destination register.
_SIDE_EFFECTS = frozenset(
    {
        Opcode.ST,
        Opcode.BAR,
        Opcode.CALL,
        Opcode.BRA,
        Opcode.CBR,
        Opcode.RET,
        Opcode.EXIT,
    }
)


def propagate_copies(fn: Function) -> int:
    """Forward intra-block register copies; returns the rewrite count."""
    total = 0
    for block in fn.ordered_blocks():
        available: dict[Reg, Reg] = {}
        for inst in block.instructions:
            if inst.opcode is not Opcode.PHI:
                before = list(inst.srcs)
                inst.srcs = [
                    available.get(s, s) if isinstance(s, VirtualReg) else s
                    for s in inst.srcs
                ]
                total += sum(
                    1 for a, b in zip(before, inst.srcs) if a != b
                )
            # Kill copies invalidated by this definition.
            for dst in inst.regs_written():
                available.pop(dst, None)
                for key in [k for k, v in available.items() if v == dst]:
                    available.pop(key)
            if (
                inst.opcode is Opcode.MOV
                and isinstance(inst.dst, VirtualReg)
                and inst.srcs
                and isinstance(inst.srcs[0], VirtualReg)
                and inst.dst.width == inst.srcs[0].width
            ):
                available[inst.dst] = inst.srcs[0]
    return total


def eliminate_dead_code(fn: Function) -> int:
    """Remove instructions whose results are never used (to fixpoint)."""
    removed_total = 0
    while True:
        info = analyze_liveness(fn)
        cfg = CFG(fn)
        removed = 0
        for label in cfg.rpo:
            block = fn.blocks[label]
            live: set[Reg] = set(info.live_out[label])
            kept_reversed = []
            for inst in reversed(block.instructions):
                defines = inst.regs_written()
                has_effect = inst.opcode in _SIDE_EFFECTS
                used = any(d in live for d in defines)
                if has_effect or used or not defines:
                    kept_reversed.append(inst)
                    for d in defines:
                        live.discard(d)
                    if inst.opcode is not Opcode.PHI:
                        live.update(inst.regs_read())
                else:
                    removed += 1
            block.instructions = list(reversed(kept_reversed))
        removed_total += removed
        if removed == 0:
            return removed_total


def cleanup_function(fn: Function) -> CleanupReport:
    """Copy propagation then DCE, iterated until neither fires."""
    report = CleanupReport()
    while True:
        copies = propagate_copies(fn)
        dead = eliminate_dead_code(fn)
        report.copies_propagated += copies
        report.instructions_removed += dead
        if copies == 0 and dead == 0:
            return report


def cleanup_module(module: Module) -> CleanupReport:
    """Clean every function of a module (in place)."""
    total = CleanupReport()
    for fn in module.functions.values():
        report = cleanup_function(fn)
        total.copies_propagated += report.copies_propagated
        total.instructions_removed += report.instructions_removed
    return total
