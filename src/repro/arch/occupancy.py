"""Occupancy arithmetic (paper Section 2, Equation 1).

Occupancy is the ratio between the number of warps actually resident on an
SM and the hardware maximum.  The resident-warp count is fixed at launch
time by three per-kernel quantities — registers per thread, shared memory
per block, and thread-block size — through the rounding rules of the
NVIDIA occupancy calculator.  This module implements those rules for the
architectures in :mod:`repro.arch.specs` and provides the two inverse
queries Orion's compiler needs:

* the largest register budget per thread that still achieves a target
  warp count (used when *raising* occupancy), and
* the smallest shared-memory padding per block that forces the warp count
  down to a target (used when *lowering* occupancy — the paper notes
  occupancy can be tuned down "by dynamically increasing shared memory
  usage per thread" without recompiling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import CacheConfig, GpuArchitecture


def ceil_to(value: int, granularity: int) -> int:
    """Round ``value`` up to a multiple of ``granularity``."""
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return -(-value // granularity) * granularity


def floor_to(value: int, granularity: int) -> int:
    """Round ``value`` down to a multiple of ``granularity``."""
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return (value // granularity) * granularity


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel configuration."""

    active_blocks: int
    active_warps: int
    active_threads: int
    occupancy: float
    #: Which resource capped the block count: "scheduler", "registers",
    #: or "shared_memory".  Ties report the first in that order.
    limiter: str
    #: Registers actually reserved per SM (after warp-granular rounding).
    allocated_registers: int
    #: Shared memory actually reserved per SM (after rounding).
    allocated_shared_memory: int

    @property
    def is_launchable(self) -> bool:
        return self.active_blocks > 0


def calculate_occupancy(
    arch: GpuArchitecture,
    block_size: int,
    regs_per_thread: int,
    smem_per_block: int = 0,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    reg_capacity_factor: float = 1.0,
) -> OccupancyResult:
    """Resident blocks/warps for one kernel configuration on one SM.

    Follows the NVIDIA occupancy calculator: registers are allocated per
    warp in units of ``register_allocation_unit``, the register-limited
    warp count is floored to the warp allocation granularity, and shared
    memory is rounded up to its allocation unit.

    ``reg_capacity_factor`` virtualizes the register file for soft-limit
    allocation strategies (Zorua-style): the register-limited warp count
    is computed against ``registers_per_sm * factor``, letting more
    warps be resident than the physical file backs.  The per-thread
    architectural cap (``max_registers_per_thread``) is an ISA encoding
    limit and is *not* relaxed.  The default ``1.0`` is the hardware
    truth.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if block_size > arch.max_threads_per_sm:
        raise ValueError(
            f"block_size {block_size} exceeds the architecture's "
            f"{arch.max_threads_per_sm}-thread SM capacity"
        )
    if regs_per_thread < 0 or smem_per_block < 0:
        raise ValueError("resource usages cannot be negative")
    if reg_capacity_factor < 1.0:
        raise ValueError("reg_capacity_factor cannot shrink the file")

    warps_per_block = ceil_to(block_size, arch.warp_size) // arch.warp_size

    limits: dict[str, int] = {}
    limits["scheduler"] = min(
        arch.max_blocks_per_sm, arch.max_warps_per_sm // warps_per_block
    )

    allocated_regs = 0
    if regs_per_thread > arch.max_registers_per_thread:
        # The compiler must spill instead; such a kernel cannot launch.
        limits["registers"] = 0
    elif regs_per_thread > 0:
        regs_per_warp = ceil_to(
            regs_per_thread * arch.warp_size, arch.register_allocation_unit
        )
        register_capacity = int(arch.registers_per_sm * reg_capacity_factor)
        warps_fitting = floor_to(
            register_capacity // regs_per_warp,
            arch.warp_allocation_granularity,
        )
        limits["registers"] = warps_fitting // warps_per_block
        allocated_regs = regs_per_warp

    smem_capacity = arch.shared_memory_bytes(cache_config)
    allocated_smem = 0
    if smem_per_block > 0:
        allocated_smem = ceil_to(
            smem_per_block, arch.shared_memory_allocation_unit
        )
        if allocated_smem > smem_capacity:
            limits["shared_memory"] = 0
        else:
            limits["shared_memory"] = smem_capacity // allocated_smem

    active_blocks = min(limits.values())
    limiter = next(name for name, v in limits.items() if v == active_blocks)
    active_warps = active_blocks * warps_per_block
    return OccupancyResult(
        active_blocks=active_blocks,
        active_warps=active_warps,
        active_threads=active_warps * arch.warp_size,
        occupancy=active_warps / arch.max_warps_per_sm,
        limiter=limiter,
        allocated_registers=active_blocks * warps_per_block * allocated_regs,
        allocated_shared_memory=active_blocks * allocated_smem,
    )


def occupancy_levels(arch: GpuArchitecture, block_size: int) -> list[int]:
    """All achievable resident-warp counts for a block size, ascending.

    The occupancy knob is discrete: warps arrive in whole blocks, so the
    achievable warp counts are the multiples of ``warps_per_block`` up to
    the scheduler limit.  The paper's sweeps (Figures 1, 2, 10, 14, 15)
    are exactly these levels.
    """
    warps_per_block = ceil_to(block_size, arch.warp_size) // arch.warp_size
    max_blocks = min(
        arch.max_blocks_per_sm, arch.max_warps_per_sm // warps_per_block
    )
    return [blocks * warps_per_block for blocks in range(1, max_blocks + 1)]


def max_regs_per_thread_for_warps(
    arch: GpuArchitecture,
    block_size: int,
    target_warps: int,
    smem_per_block: int = 0,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    reg_capacity_factor: float = 1.0,
) -> int | None:
    """Largest register budget per thread achieving ``target_warps``.

    Returns ``None`` when the target is unreachable even with a single
    register per thread (for instance because shared memory or the
    scheduler caps the warp count below the target).
    """
    if target_warps <= 0:
        raise ValueError("target_warps must be positive")
    best: int | None = None
    for regs in range(1, arch.max_registers_per_thread + 1):
        result = calculate_occupancy(
            arch,
            block_size,
            regs,
            smem_per_block,
            cache_config,
            reg_capacity_factor=reg_capacity_factor,
        )
        if result.active_warps >= target_warps:
            best = regs
        else:
            break
    return best


def min_smem_padding_to_cap_warps(
    arch: GpuArchitecture,
    block_size: int,
    target_warps: int,
    regs_per_thread: int,
    base_smem_per_block: int = 0,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    reg_capacity_factor: float = 1.0,
) -> int | None:
    """Smallest extra shared memory per block capping warps at the target.

    This is the downward-tuning mechanism: adding unused shared memory to
    a block lowers how many blocks fit, without touching the binary's
    register allocation.  Returns the *padding* in bytes (0 when the
    kernel already sits at or below the target), or ``None`` if no
    padding reaches the target while keeping the kernel launchable.
    """
    if target_warps <= 0:
        raise ValueError("target_warps must be positive")
    current = calculate_occupancy(
        arch,
        block_size,
        regs_per_thread,
        base_smem_per_block,
        cache_config,
        reg_capacity_factor=reg_capacity_factor,
    )
    if current.active_warps <= target_warps:
        return 0
    step = arch.shared_memory_allocation_unit
    capacity = arch.shared_memory_bytes(cache_config)
    padding = step
    while base_smem_per_block + padding <= capacity:
        result = calculate_occupancy(
            arch,
            block_size,
            regs_per_thread,
            base_smem_per_block + padding,
            cache_config,
            reg_capacity_factor=reg_capacity_factor,
        )
        if not result.is_launchable:
            return None
        if result.active_warps <= target_warps:
            return padding
        padding += step
    return None


def occupancy_fraction(arch: GpuArchitecture, active_warps: int) -> float:
    """Convenience: warp count -> occupancy in [0, 1]."""
    return active_warps / arch.max_warps_per_sm
