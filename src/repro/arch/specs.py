"""GPU architecture descriptors.

Orion is evaluated on two machines (paper Section 4, "Platform"):

* an NVIDIA GTX680 (Kepler, compute capability 3.0): 8 SMs, 65536
  registers per SM, 64KB of combined shared memory and L1 cache, at most
  64 active warps (2048 threads) per SM;
* an NVIDIA Tesla C2075 (Fermi, compute capability 2.0): 14 SMs, 32768
  registers per SM, 64KB of combined shared memory and L1 cache, at most
  48 active warps (1536 threads) per SM.

This module captures those limits, plus the allocation granularities the
NVIDIA occupancy calculator uses, as plain frozen dataclasses.  Everything
downstream (occupancy arithmetic, the timing simulator, the tuner) reads
hardware facts exclusively from these descriptors, so adding an
architecture is a matter of adding a descriptor here — exactly the
portability claim the paper makes for Orion's middle end.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass


class CacheConfig(enum.Enum):
    """Split of the 64KB on-chip array between shared memory and L1 cache.

    The paper's Table 3 compares a "small cache" configuration (16KB L1 +
    48KB shared memory) against a "large cache" one (48KB L1 + 16KB shared
    memory); both Fermi and Kepler support the two splits.
    """

    SMALL_CACHE = "small_cache"
    LARGE_CACHE = "large_cache"


#: Bytes of L1 cache / shared memory for each :class:`CacheConfig`.
_CACHE_SPLITS = {
    CacheConfig.SMALL_CACHE: (16 * 1024, 48 * 1024),
    CacheConfig.LARGE_CACHE: (48 * 1024, 16 * 1024),
}


@dataclass(frozen=True)
class GpuArchitecture:
    """Static resource limits of one GPU model.

    The fields mirror the inputs of the NVIDIA occupancy calculator for
    the corresponding compute capability, plus the handful of timing and
    power parameters the simulator substrate needs.
    """

    name: str
    compute_capability: tuple[int, int]
    num_sms: int
    cores_per_sm: int

    # Scheduling limits (per SM).
    warp_size: int
    max_warps_per_sm: int
    max_threads_per_sm: int
    max_blocks_per_sm: int

    # Register file (per SM).
    registers_per_sm: int
    max_registers_per_thread: int
    register_allocation_unit: int  # registers, rounded per warp
    warp_allocation_granularity: int

    # On-chip memory array (per SM): shared memory + L1, 64KB combined.
    onchip_memory_bytes: int
    shared_memory_allocation_unit: int  # bytes

    # Maxwell and later decouple shared memory from L1: when these are
    # set the SM has a fixed dedicated shared-memory array and a fixed
    # L1/texture cache, and :class:`CacheConfig` becomes a no-op knob
    # (both splits report the same capacities).
    dedicated_shared_bytes: int | None = None
    dedicated_l1_bytes: int | None = None

    # Timing parameters for the simulator substrate (cycles).
    issue_width: int = 1
    alu_latency: int = 10
    sfu_latency: int = 20
    shared_latency: int = 30
    l1_latency: int = 40
    l2_latency: int = 200
    dram_latency: int = 500
    # How many outstanding memory requests one SM sustains before the
    # memory pipeline back-pressures (a coarse MSHR count).
    max_outstanding_memory: int = 64
    # DRAM service: minimum cycles between completing two misses that go
    # to DRAM, modelling the SM's share of memory bandwidth.
    dram_service_interval: int = 8

    # L2 (device-wide, modelled per SM slice).
    l2_bytes_per_sm: int = 64 * 1024
    cache_line_bytes: int = 128
    l1_associativity: int = 4
    l2_associativity: int = 8

    # Whether L1 caches global-memory traffic.  True on Fermi; on Kepler
    # the L1 is reserved for thread-private local memory (spills), which
    # is why the paper sees downward tuning pay off more on the C2075.
    l1_caches_global: bool = False

    # Power model (arbitrary but self-consistent units; see sim.energy).
    power_base: float = 40.0
    power_per_sm: float = 6.0
    power_per_active_warp: float = 0.12
    power_register_file: float = 28.0
    power_l1: float = 8.0

    def __post_init__(self) -> None:
        if self.max_threads_per_sm != self.max_warps_per_sm * self.warp_size:
            raise ValueError(
                f"{self.name}: max_threads_per_sm must equal "
                "max_warps_per_sm * warp_size"
            )

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def shared_memory_bytes(self, config: CacheConfig) -> int:
        """Shared-memory capacity (bytes per SM) under ``config``."""
        if self.dedicated_shared_bytes is not None:
            return self.dedicated_shared_bytes
        return _CACHE_SPLITS[config][1]

    def l1_cache_bytes(self, config: CacheConfig) -> int:
        """L1 capacity (bytes per SM) under ``config``."""
        if self.dedicated_l1_bytes is not None:
            return self.dedicated_l1_bytes
        return _CACHE_SPLITS[config][0]

    def fingerprint(self) -> str:
        """Content hash of every field (keys tuning records to the arch).

        The descriptor is a frozen dataclass of plain values, so its
        ``repr`` is a stable serialization; two archs sharing a name
        but differing in any limit (e.g. ``with_overrides`` variants)
        hash apart.
        """
        import hashlib

        return hashlib.sha256(repr(self).encode("utf-8")).hexdigest()[:16]

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def registers_per_thread_at_full_occupancy(self) -> int:
        """Registers each thread gets when every schedulable thread runs.

        The paper's max-live threshold (32 on Kepler) is exactly this
        number: 65536 registers / 2048 threads.
        """
        return self.registers_per_sm // self.max_threads_per_sm

    def with_overrides(self, **changes: object) -> "GpuArchitecture":
        """A copy of this descriptor with some fields replaced."""
        return dataclasses.replace(self, **changes)


GTX680 = GpuArchitecture(
    name="GTX680",
    compute_capability=(3, 0),
    num_sms=8,
    cores_per_sm=192,
    warp_size=32,
    max_warps_per_sm=64,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    registers_per_sm=65536,
    max_registers_per_thread=63,
    register_allocation_unit=256,
    warp_allocation_granularity=4,
    onchip_memory_bytes=64 * 1024,
    shared_memory_allocation_unit=256,
    # 192 cores / 32-wide warps: up to 6 warp-instructions per cycle.
    issue_width=6,
)

TESLA_C2075 = GpuArchitecture(
    name="Tesla C2075",
    compute_capability=(2, 0),
    num_sms=14,
    cores_per_sm=32,
    warp_size=32,
    max_warps_per_sm=48,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    registers_per_sm=32768,
    max_registers_per_thread=63,
    register_allocation_unit=64,
    warp_allocation_granularity=2,
    onchip_memory_bytes=64 * 1024,
    shared_memory_allocation_unit=128,
    # 32 cores / 32-wide warps: one warp-instruction per cycle.
    issue_width=1,
    # Fermi's L1 caches global *and* local memory; Kepler's caches local
    # memory only (paper Section 4.2 relies on this difference).
    l1_caches_global=True,
)


GTX980 = GpuArchitecture(
    name="GTX980",
    compute_capability=(5, 2),
    num_sms=16,
    cores_per_sm=128,
    warp_size=32,
    max_warps_per_sm=64,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    # Maxwell lifts the per-thread encoding cap from Kepler's 63 to 255,
    # which changes Orion's trade-off space: kernels that *had* to spill
    # on the GTX680 can allocate spill-free here, so the original
    # version moves and upward tuning starts from a different anchor.
    max_registers_per_thread=255,
    register_allocation_unit=256,
    warp_allocation_granularity=4,
    onchip_memory_bytes=96 * 1024,
    shared_memory_allocation_unit=256,
    # GM204: 96KB dedicated shared memory, 24KB L1/texture per SM — the
    # CacheConfig split knob no longer exists on this generation.
    dedicated_shared_bytes=96 * 1024,
    dedicated_l1_bytes=24 * 1024,
    # 128 cores / 32-wide warps: up to 4 warp-instructions per cycle.
    issue_width=4,
)

GTX1080 = GpuArchitecture(
    name="GTX1080",
    compute_capability=(6, 1),
    num_sms=20,
    cores_per_sm=128,
    warp_size=32,
    max_warps_per_sm=64,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    warp_allocation_granularity=4,
    onchip_memory_bytes=96 * 1024,
    shared_memory_allocation_unit=256,
    # GP104: 96KB dedicated shared memory, 48KB unified L1/texture.
    dedicated_shared_bytes=96 * 1024,
    dedicated_l1_bytes=48 * 1024,
    issue_width=4,
    # Pascal's unified L1/texture path caches global loads again
    # (Kepler reserved L1 for local memory), so downward tuning has a
    # cache to protect — like the C2075, unlike the GTX680.
    l1_caches_global=True,
)


def known_architectures() -> tuple[GpuArchitecture, ...]:
    """The two architectures the paper evaluates on."""
    return (GTX680, TESLA_C2075)


def all_architectures() -> tuple[GpuArchitecture, ...]:
    """Every shipped descriptor, paper platforms first."""
    return (GTX680, TESLA_C2075, GTX980, GTX1080)
