"""Hardware facts: architecture descriptors and occupancy arithmetic."""

from repro.arch.occupancy import (
    OccupancyResult,
    calculate_occupancy,
    ceil_to,
    floor_to,
    max_regs_per_thread_for_warps,
    min_smem_padding_to_cap_warps,
    occupancy_fraction,
    occupancy_levels,
)
from repro.arch.specs import (
    GTX680,
    GTX980,
    GTX1080,
    TESLA_C2075,
    CacheConfig,
    GpuArchitecture,
    all_architectures,
    known_architectures,
)

__all__ = [
    "GTX680",
    "GTX980",
    "GTX1080",
    "TESLA_C2075",
    "CacheConfig",
    "GpuArchitecture",
    "OccupancyResult",
    "all_architectures",
    "calculate_occupancy",
    "ceil_to",
    "floor_to",
    "known_architectures",
    "max_regs_per_thread_for_warps",
    "min_smem_padding_to_cap_warps",
    "occupancy_fraction",
    "occupancy_levels",
]
