"""Trace-file tooling: read, summarize, filter, diff, export.

A *trace file* is the JSONL stream a
:class:`~repro.runtime.telemetry.JsonlSink` writes: one event per line,
``seq``-ordered, schema version :data:`TRACE_SCHEMA_VERSION` (see
``docs/observability.md`` for the field-by-field description).  This
module is the analysis half — everything the ``repro trace`` CLI
subcommands do lives here, operating on plain dicts so saved traces
from other processes (or other machines) need no repro objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

#: Version of the JSONL trace schema these tools understand.  Bump when
#: an event's serialized shape changes incompatibly.
TRACE_SCHEMA_VERSION = 1


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file into event dicts (seq order preserved)."""
    return parse_trace_text(Path(path).read_text(encoding="utf-8"), str(path))


def parse_trace_text(text: str, source: str = "<trace>") -> list[dict]:
    """Parse JSONL trace *content* (a file's text, an HTTP body).

    ``source`` only labels error messages.  This is :func:`read_trace`
    without the filesystem, so ``repro trace merge --url`` can parse a
    daemon's ``/debug/trace`` response with identical semantics.
    """
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{source}:{lineno}: not a JSON event: {exc}")
        if not isinstance(event, dict) or "seq" not in event or "kind" not in event:
            raise ValueError(f"{source}:{lineno}: missing seq/kind fields")
        events.append(event)
    return events


def filter_trace(
    events: Iterable[dict],
    session: str | None = None,
    kinds: Sequence[str] | None = None,
) -> list[dict]:
    """Events matching a session and/or a set of kinds."""
    kept = []
    for event in events:
        if session is not None and event.get("session") != session:
            continue
        if kinds and event["kind"] not in kinds:
            continue
        kept.append(event)
    return kept


def strip_wall(event: dict) -> dict:
    """The event without its wall-clock field (the non-deterministic part)."""
    return {k: v for k, v in event.items() if k != "wall"}


# ----------------------------------------------------------------------
# Summary
# ----------------------------------------------------------------------
def summarize_trace(events: list[dict]) -> str:
    """Per-kind counts, per-span duration stats, and cache hit rates."""
    from repro.harness.reporting import format_table

    kind_counts: dict[str, int] = {}
    sessions: set[str] = set()
    for event in events:
        kind_counts[event["kind"]] = kind_counts.get(event["kind"], 0) + 1
        if event.get("session"):
            sessions.add(event["session"])

    out = [
        f"{len(events)} event(s), {len(sessions)} session(s)"
        + (f": {', '.join(sorted(sessions))}" if sessions else ""),
        "",
        format_table(
            ["kind", "count"],
            sorted(kind_counts.items()),
            title="Events by kind",
        ),
    ]

    span_stats = _span_stats(events)
    if span_stats:
        have_wall = any(s["wall"] is not None for s in span_stats.values())
        headers = ["span", "count"]
        if have_wall:
            headers += ["seconds", "mean ms"]
        rows = []
        for name, stats in sorted(span_stats.items()):
            row = [name, stats["count"]]
            if have_wall:
                wall = stats["wall"]
                row += (
                    [f"{wall:.3f}", f"{1000.0 * wall / stats['count']:.2f}"]
                    if wall is not None
                    else ["-", "-"]
                )
            rows.append(row)
        out += ["", format_table(headers, rows, title="Spans")]

    hits = kind_counts.get("cache_hit", 0)
    misses = kind_counts.get("cache_miss", 0)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        out += [
            "",
            f"measurement cache: {hits} hits, {misses} misses, "
            f"hit rate {rate:.1f}%",
        ]
    return "\n".join(out)


def _span_stats(events: list[dict]) -> dict[str, dict]:
    stats: dict[str, dict] = {}
    for event in events:
        if event["kind"] != "span_end":
            continue
        name = event.get("data", {}).get("name", "?")
        entry = stats.setdefault(name, {"count": 0, "wall": None})
        entry["count"] += 1
        wall = event.get("wall")
        if wall is not None:
            entry["wall"] = (entry["wall"] or 0.0) + wall
    return stats


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
def diff_traces(
    a: list[dict],
    b: list[dict],
    ignore_wall: bool = True,
    limit: int = 10,
) -> list[str]:
    """Seq-aligned differences between two traces.

    Wall-clock durations are ignored by default — they differ between
    any two real runs; everything else of a deterministic run should
    not.  Returns human-readable difference lines (empty = identical).
    """
    diffs: list[str] = []
    for i in range(max(len(a), len(b))):
        if len(diffs) >= limit:
            diffs.append(f"... (stopped after {limit} differences)")
            break
        if i >= len(a):
            diffs.append(f"seq {b[i].get('seq', i + 1)}: only in B: {b[i]['kind']}")
            continue
        if i >= len(b):
            diffs.append(f"seq {a[i].get('seq', i + 1)}: only in A: {a[i]['kind']}")
            continue
        ea, eb = a[i], b[i]
        if ignore_wall:
            ea, eb = strip_wall(ea), strip_wall(eb)
        if ea != eb:
            diffs.append(
                f"seq {ea.get('seq', i + 1)}: "
                f"A={json.dumps(ea, sort_keys=True)} "
                f"B={json.dumps(eb, sort_keys=True)}"
            )
    if len(a) != len(b):
        diffs.append(f"lengths differ: A has {len(a)} event(s), B has {len(b)}")
    return diffs


# ----------------------------------------------------------------------
# Chrome/Perfetto export
# ----------------------------------------------------------------------
def to_chrome(events: list[dict]) -> dict:
    """Chrome ``trace_event`` JSON (loads in Perfetto / chrome://tracing).

    Sessions map to threads of one process; span pairs become ``B``/``E``
    duration events and every other kind an instant event.  Timestamps
    are the deterministic sequence numbers (microseconds), so the
    visual ordering matches the trace exactly even when wall-clock
    durations were suppressed; real durations, when present, ride in
    ``args.wall``.
    """
    trace_events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_for(session: str | None) -> int:
        key = session if session is not None else "<engine>"
        if key not in tids:
            tids[key] = len(tids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tids[key],
                    "args": {"name": key},
                }
            )
        return tids[key]

    for event in events:
        kind = event["kind"]
        data = dict(event.get("data", {}))
        base = {
            "pid": 1,
            "tid": tid_for(event.get("session")),
            "ts": event["seq"],
        }
        if event.get("wall") is not None:
            data["wall"] = event["wall"]
        if kind == "span_start":
            trace_events.append(
                {
                    **base,
                    "ph": "B",
                    "cat": "span",
                    "name": data.pop("name", "span"),
                    "args": data,
                }
            )
        elif kind == "span_end":
            trace_events.append(
                {
                    **base,
                    "ph": "E",
                    "cat": "span",
                    "name": data.pop("name", "span"),
                    "args": data,
                }
            )
        else:
            trace_events.append(
                {
                    **base,
                    "ph": "i",
                    "s": "t",
                    "cat": "event",
                    "name": kind,
                    "args": data,
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_schema_version": TRACE_SCHEMA_VERSION},
    }


# ----------------------------------------------------------------------
# Cross-node merge (distributed traces)
# ----------------------------------------------------------------------
#: span names that wrap one whole request end (client or daemon side)
_REQUEST_SPANS = ("client_request", "daemon_request")


def merge_traces(traces: dict[str, list[dict]]) -> list[dict]:
    """Join per-node traces into one causally ordered event list.

    ``traces`` maps a node label (``host:port``, a file stem — anything
    unique) to that node's parsed events.  Each returned event is a
    copy annotated with its ``node`` and a merged timestamp ``ts``.

    Per-node sequence numbers are process-local clocks with arbitrary
    relative offsets, so the merge normalizes them the only way the
    data allows: **causality across hops**.  A ``span_start`` carrying
    ``data.parent_span`` (the remote parent's span id) and
    ``data.trace`` must come *after* the ``span_start`` of that parent
    span (same trace) on whichever node emitted it.  Each such link
    yields the constraint ``off[child] + seq_child >= off[parent] +
    seq_parent + 1`` over per-node offsets, solved by longest-path
    relaxation (offsets only ever grow; ``len(traces)`` passes suffice
    for any loop-free hop graph).  Nodes with no cross-links keep
    offset 0 — their events simply interleave by local order.
    """
    nodes = sorted(traces)
    # (trace_id, span_id) -> start seq, per node: the link targets.
    span_starts: dict[str, dict[tuple[str, int], int]] = {}
    for node in nodes:
        index: dict[tuple[str, int], int] = {}
        for event in traces[node]:
            if event["kind"] != "span_start":
                continue
            data = event.get("data", {})
            trace_id, span_id = data.get("trace"), data.get("span")
            if isinstance(trace_id, str) and isinstance(span_id, int):
                index.setdefault((trace_id, span_id), event["seq"])
        span_starts[node] = index

    constraints: list[tuple[str, int, str, int]] = []
    for node in nodes:
        for event in traces[node]:
            if event["kind"] != "span_start":
                continue
            data = event.get("data", {})
            trace_id = data.get("trace")
            parent = data.get("parent_span")
            if not isinstance(trace_id, str) or not isinstance(parent, int):
                continue
            for other in nodes:
                if other == node:
                    continue
                parent_seq = span_starts[other].get((trace_id, parent))
                if parent_seq is not None:
                    constraints.append(
                        (node, event["seq"], other, parent_seq)
                    )
                    break

    offsets = {node: 0 for node in nodes}
    for _ in range(max(1, len(nodes))):
        changed = False
        for child, child_seq, parent, parent_seq in constraints:
            needed = offsets[parent] + parent_seq + 1 - child_seq
            if offsets[child] < needed:
                offsets[child] = needed
                changed = True
        if not changed:
            break

    merged: list[dict] = []
    for node in nodes:
        for event in traces[node]:
            out = dict(event)
            out["node"] = node
            out["ts"] = offsets[node] + event["seq"]
            merged.append(out)
    merged.sort(key=lambda e: (e["ts"], e["node"], e["seq"]))
    return merged


def merged_to_chrome(events: list[dict]) -> dict:
    """Chrome ``trace_event`` JSON of a merged cross-node trace.

    Each node becomes its own *process* (named via ``process_name``
    metadata), sessions stay threads within their node, and timestamps
    are the merge's normalized ``ts`` — so Perfetto shows the full
    client → owner → replica fan-out as parallel process tracks in
    causal order.
    """
    trace_events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid_for(node: str) -> int:
        if node not in pids:
            pids[node] = len(pids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[node],
                    "tid": 0,
                    "args": {"name": node},
                }
            )
        return pids[node]

    def tid_for(node: str, session: str | None) -> int:
        key = (node, session if session is not None else "<engine>")
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == node]) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid_for(node),
                    "tid": tids[key],
                    "args": {"name": key[1]},
                }
            )
        return tids[key]

    for event in events:
        node = event.get("node", "<node>")
        kind = event["kind"]
        data = dict(event.get("data", {}))
        base = {
            "pid": pid_for(node),
            "tid": tid_for(node, event.get("session")),
            "ts": event.get("ts", event["seq"]),
        }
        if event.get("wall") is not None:
            data["wall"] = event["wall"]
        if kind == "span_start":
            trace_events.append(
                {
                    **base,
                    "ph": "B",
                    "cat": "span",
                    "name": data.pop("name", "span"),
                    "args": data,
                }
            )
        elif kind == "span_end":
            trace_events.append(
                {
                    **base,
                    "ph": "E",
                    "cat": "span",
                    "name": data.pop("name", "span"),
                    "args": data,
                }
            )
        else:
            trace_events.append(
                {
                    **base,
                    "ph": "i",
                    "s": "t",
                    "cat": "event",
                    "name": kind,
                    "args": data,
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_schema_version": TRACE_SCHEMA_VERSION},
    }


def slow_traces(events: list[dict], top: int = 10) -> list[dict]:
    """The slowest distributed requests of a (merged) trace.

    Groups events by their ``trace`` id and ranks by the largest
    request-span wall-clock duration when durations were recorded,
    falling back to merged-timestamp extent (event count of causal
    span) for wall-suppressed traces.  Returns at most ``top`` summary
    rows, slowest first.
    """
    groups: dict[str, list[dict]] = {}
    for event in events:
        trace_id = event.get("data", {}).get("trace")
        if isinstance(trace_id, str):
            groups.setdefault(trace_id, []).append(event)

    rows: list[dict] = []
    for trace_id, group in groups.items():
        wall = None
        types: set[str] = set()
        for event in group:
            data = event.get("data", {})
            if data.get("name") in _REQUEST_SPANS:
                if data.get("type") is not None:
                    types.add(str(data["type"]))
                if (
                    event["kind"] == "span_end"
                    and event.get("wall") is not None
                ):
                    wall = max(wall or 0.0, event["wall"])
        stamps = [event.get("ts", event["seq"]) for event in group]
        rows.append(
            {
                "trace": trace_id,
                "events": len(group),
                "nodes": sorted(
                    {e["node"] for e in group if "node" in e}
                ),
                "types": sorted(types),
                "wall": wall,
                "extent": max(stamps) - min(stamps) + 1 if stamps else 0,
            }
        )
    rows.sort(
        key=lambda row: (
            -(row["wall"] if row["wall"] is not None else -1.0),
            -row["extent"],
            row["trace"],
        )
    )
    return rows[:top]
