"""Process-wide metrics registry: counters, gauges, histograms.

The observability layer's aggregate store.  Hot seams across the whole
system — compile-cache and measurement-cache lookups, candidate
realizations, allocator spills, verifier checks, backend invocations,
tuner convergence — charge named metrics here; the CLI renders the
final snapshot as a Prometheus-style text exposition (``repro
metrics``) and the bench report embeds it as JSON.

Design constraints, in order:

* **thread-safe** — the execution engine charges metrics from scheduler
  worker threads;
* **deterministic snapshots** — families sort by metric name, samples
  by their sorted label items, so two identical runs serialize
  identically;
* **JSON-safe snapshots** — a snapshot survives the bench report's
  round trip to disk and back into :func:`render_prometheus`.

Histograms use *fixed* bucket boundaries chosen at first registration;
re-registering with different boundaries is an error, so a metric's
meaning cannot drift between call sites.
"""

from __future__ import annotations

import math
import threading

#: label items sorted for deterministic identity + ordering
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram boundaries, tuned for iteration-count shaped data.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._samples.get(_label_key(labels), 0)

    def snapshot_samples(self) -> list[dict]:
        with self._lock:
            items = sorted(self._samples.items())
        return [
            {"labels": dict(key), "value": value} for key, value in items
        ]


class Gauge:
    """A value that goes up and down, per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = value

    def add(self, amount: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._samples.get(_label_key(labels), 0)

    def snapshot_samples(self) -> list[dict]:
        with self._lock:
            items = sorted(self._samples.items())
        return [
            {"labels": dict(key), "value": value} for key, value in items
        ]


class _HistogramSample:
    __slots__ = ("bucket_counts", "sum", "count", "exemplar")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0
        self.exemplar: dict | None = None


class Histogram:
    """Observations bucketed under fixed boundaries, per label set.

    Boundaries are upper-inclusive (Prometheus ``le`` semantics) and an
    implicit ``+Inf`` bucket always exists.

    ``observe`` optionally attaches an *exemplar* — a reference (an
    Orion trace id, typically) to one concrete observation — kept as
    last-write-wins per label set.  Exemplars appear in snapshots (and
    therefore ``/debug/vars``) but are deliberately left out of the
    text exposition: the classic Prometheus text format predates
    OpenMetrics exemplar syntax and strict parsers reject it.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name}: buckets must be ascending")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._samples: dict[LabelKey, _HistogramSample] = {}

    def observe(
        self, value: float, exemplar: str | None = None, **labels
    ) -> None:
        key = _label_key(labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = self._samples[key] = _HistogramSample(
                    len(self.buckets) + 1
                )
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    sample.bucket_counts[i] += 1
                    break
            else:
                sample.bucket_counts[-1] += 1
            sample.sum += value
            sample.count += 1
            if exemplar is not None:
                sample.exemplar = {"ref": str(exemplar), "value": value}

    def snapshot_samples(self) -> list[dict]:
        bounds = [_fmt_bound(b) for b in self.buckets] + ["+Inf"]
        with self._lock:
            items = sorted(self._samples.items(), key=lambda kv: kv[0])
            out = []
            for key, sample in items:
                entry = {
                    "labels": dict(key),
                    # cumulative counts, one per ``le`` boundary
                    "buckets": [
                        [bound, count]
                        for bound, count in zip(
                            bounds, _cumulative(sample.bucket_counts)
                        )
                    ],
                    "sum": sample.sum,
                    "count": sample.count,
                }
                # Only present when one was ever attached, so snapshots
                # of exemplar-free runs keep their exact prior shape.
                if sample.exemplar is not None:
                    entry["exemplar"] = dict(sample.exemplar)
                out.append(entry)
            return out


def _cumulative(counts: list[int]) -> list[int]:
    total = 0
    out = []
    for c in counts:
        total += c
        out.append(total)
    return out


def _fmt_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A named collection of metrics with deterministic snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    # -- registration (get-or-create, type-checked) --------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Histogram(name, help, buckets)
            elif not isinstance(metric, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            elif tuple(float(b) for b in buckets) != metric.buckets:
                raise ValueError(
                    f"histogram {name!r} re-registered with different buckets"
                )
            return metric

    def _register(self, cls, name: str, help: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    # -- snapshot ------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe, deterministically ordered point-in-time copy."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        families = []
        for name, metric in metrics:
            family = {
                "name": name,
                "type": metric.kind,
                "help": metric.help,
                "samples": metric.snapshot_samples(),
            }
            if isinstance(metric, Histogram):
                family["buckets"] = [_fmt_bound(b) for b in metric.buckets]
            families.append(family)
        return {"metrics": families}

    def reset(self) -> None:
        """Drop every metric (tests; fresh runs)."""
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition of a registry snapshot.

    Accepts the output of :meth:`MetricsRegistry.snapshot` — including
    one deserialized from a bench report — so ``repro metrics`` can
    render a past run's final state.
    """
    lines: list[str] = []
    for family in snapshot.get("metrics", []):
        name, kind = family["name"], family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if kind == "histogram":
                for bound, count in sample["buckets"]:
                    lines.append(
                        _sample_line(
                            f"{name}_bucket",
                            {**labels, "le": bound},
                            count,
                        )
                    )
                lines.append(_sample_line(f"{name}_sum", labels, sample["sum"]))
                lines.append(
                    _sample_line(f"{name}_count", labels, sample["count"])
                )
            else:
                lines.append(_sample_line(name, labels, sample["value"]))
    return "\n".join(lines) + ("\n" if lines else "")


def _sample_line(name: str, labels: dict, value) -> str:
    if labels:
        rendered = ",".join(
            f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
        )
        name = f"{name}{{{rendered}}}"
    return f"{name} {_fmt_value(value)}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return str(value)


# ----------------------------------------------------------------------
#: Process-wide registry every instrumented seam charges.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def reset_registry() -> None:
    """Clear the process-wide registry in place (tests; fresh runs)."""
    REGISTRY.reset()
