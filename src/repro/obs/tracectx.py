"""Distributed trace context: one id that follows a request anywhere.

A *trace* is everything one logical request caused, across every
process it touched: the client's ``client_request`` span, the daemon's
``daemon_request`` span, the forward hop to the ring owner, the engine
session that tuned the kernel, the replication frames that shipped the
winner.  The :class:`TraceContext` is the tiny piece of state that ties
them together:

* ``trace_id`` — a random 16-hex-char identifier minted once, at the
  edge (the client, or the first daemon to see an untraced request),
  and carried verbatim across every hop;
* ``parent_span_id`` — the span id, *in the sender's trace file*, of
  the span that caused this hop.  Together with the trace id it lets
  ``repro trace merge`` re-link spans across per-node files.

The ambient context is a :mod:`contextvars` variable, so it follows
``async`` task switches correctly (two interleaved daemon requests each
see their own context).  It does **not** cross
``loop.run_in_executor`` — thread-pool work must be handed the context
explicitly and re-enter it with :func:`use_trace` (the daemon's
``_tune_sync`` does exactly that).

The hot integration point is
:meth:`repro.runtime.telemetry.TelemetryHub.emit`: while a context is
installed, every emitted event gains a ``trace`` field in its data, so
spans and plain events alike join the distributed trace with no
per-call-site changes.  With no context installed nothing is added and
traces stay byte-identical to pre-tracing runs.
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one distributed request."""

    trace_id: str
    #: span id of the causing span *in the sender's trace*; ``None`` at
    #: the root of a trace
    parent_span_id: int | None = None


_current: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "orion_trace_context", default=None
)


def current_trace() -> TraceContext | None:
    """The ambient trace context, or ``None`` outside any trace."""
    return _current.get()


def new_trace_id() -> str:
    """Mint a fresh 16-hex-char trace id.

    Random (not derived from inputs) on purpose: two submissions of the
    same kernel are two distinct requests, and the id must never
    collide across unrelated client processes.
    """
    return os.urandom(8).hex()


@contextmanager
def use_trace(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``ctx`` as the ambient trace context for the block.

    ``None`` is accepted and installs "no trace" — callers can pass an
    optional context straight through without branching.
    """
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)
