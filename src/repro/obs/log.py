"""Structured logging: leveled JSONL records with trace correlation.

The service layer's answer to "what happened?" after the fact.  One
:class:`StructuredLogger` writes one JSON object per line, shaped for
machines first:

* **fixed field order** — every record starts ``seq``, ``lvl``,
  ``event``, followed by the caller's fields in sorted order, with the
  optional wall-clock ``ts`` last.  Two runs of a deterministic
  workload produce diffable logs, and ``grep '"event": "..."'`` works
  without a JSON parser;
* **trace correlation** — while a :mod:`repro.obs.tracectx` context is
  installed, records automatically gain the ``trace`` field, so a log
  line joins the distributed trace the same way telemetry events do;
* **deterministic by the same switch as traces** — ``ts`` (epoch
  seconds) is suppressed under ``ORION_TRACE_WALL=0``, mirroring the
  telemetry hub's wall-clock gating.

Configuration mirrors the trace file: the daemon takes ``--log-file``,
everything else honours ``$ORION_LOG`` (path) and ``$ORION_LOG_LEVEL``
(``debug``/``info``/``warn``/``error``, default ``info``) through the
process-global :func:`get_logger`.  An unconfigured logger is disabled
and near-free: every call short-circuits on one attribute check.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

#: numeric severities; records below the logger's level are dropped
LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}


def _default_record_time() -> bool:
    # The same switch that makes traces byte-identical makes logs so.
    return os.environ.get("ORION_TRACE_WALL", "") != "0"


class StructuredLogger:
    """Leveled JSONL records to one file (thread-safe, flushed per line)."""

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        level: str = "info",
        record_time: bool | None = None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r} "
                f"(choose from {', '.join(sorted(LEVELS))})"
            )
        self.path = Path(path) if path else None
        self.level = level
        self.enabled = self.path is not None
        self.record_time = (
            _default_record_time() if record_time is None else record_time
        )
        self._threshold = LEVELS[level]
        self._lock = threading.Lock()
        self._seq = 0
        self._handle = None
        self._opened = False

    # ------------------------------------------------------------------
    def log(self, level: str, event: str, **fields) -> None:
        """Write one record (dropped when disabled or below level)."""
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(
                f"unknown log level {level!r} "
                f"(choose from {', '.join(sorted(LEVELS))})"
            )
        if not self.enabled or severity < self._threshold:
            return
        if "trace" not in fields:
            trace_id = _ambient_trace_id()
            if trace_id is not None:
                fields["trace"] = trace_id
        ts = time.time() if self.record_time else None
        with self._lock:
            self._seq += 1
            record: dict = {"seq": self._seq, "lvl": level, "event": event}
            for key in sorted(fields):
                # None means "absent", mirroring the flight recorder.
                if fields[key] is not None:
                    record[key] = fields[key]
            if ts is not None:
                record["ts"] = ts
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                # Truncate a stale file on first open, append after a
                # close — the same lifecycle as the JSONL trace sink.
                mode = "a" if self._opened else "w"
                self._handle = self.path.open(mode, encoding="utf-8")
                self._opened = True
            self._handle.write(json.dumps(record, default=str) + "\n")
            self._handle.flush()

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warn(self, event: str, **fields) -> None:
        self.log("warn", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def _ambient_trace_id() -> str | None:
    from repro.obs.tracectx import current_trace

    ctx = current_trace()
    return None if ctx is None else ctx.trace_id


# ----------------------------------------------------------------------
#: process-global logger, lazily configured from the environment
_GLOBAL: StructuredLogger | None = None
_GLOBAL_LOCK = threading.Lock()


def get_logger() -> StructuredLogger:
    """The process logger (``$ORION_LOG``; disabled when unset)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = StructuredLogger(
                os.environ.get("ORION_LOG") or None,
                level=os.environ.get("ORION_LOG_LEVEL", "info"),
            )
        return _GLOBAL


def configure(
    path: str | os.PathLike | None,
    level: str = "info",
) -> StructuredLogger | None:
    """Replace the process logger (the CLI's ``--log-file``).

    ``configure(None)`` uninstalls: the previous logger is closed and
    the next :func:`get_logger` re-reads the environment.
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is not None:
            _GLOBAL.close()
        _GLOBAL = StructuredLogger(path, level=level) if path else None
        return _GLOBAL
