"""The flight recorder: a bounded ring of recent request summaries.

Metrics aggregate and traces narrate, but neither answers "what were
the last N requests this daemon served?" when a timeout fires at 3am
with no trace file configured.  The :class:`FlightRecorder` is that
always-on evidence: a fixed-capacity in-memory deque of small summary
dicts (trace id, verb, outcome, latency, forward hops, answering
peer), appended on every dispatched request and dropped oldest-first.

Consumers:

* the daemon dumps the recent entries into the structured log when a
  request times out or fails internally;
* the HTTP sidecar serves the live ring as ``GET /debug/requests``.

Entries are plain JSON-safe dicts so both consumers serialize them
as-is.  The recorder never grows beyond ``capacity`` and recording is
one lock-protected append — cheap enough to run unconditionally.
"""

from __future__ import annotations

import threading
from collections import deque

#: requests remembered per daemon; enough to reconstruct the moments
#: before a failure without ever mattering for memory
DEFAULT_CAPACITY = 128


class FlightRecorder:
    """Thread-safe bounded ring buffer of request-summary dicts."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be at least 1")
        self.capacity = capacity
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._total = 0

    def record(self, **entry) -> dict:
        """Append one summary; ``None``-valued fields are dropped.

        Every entry gains ``n``, a monotonically increasing request
        ordinal, so consumers can tell how much history the ring has
        already evicted (``total - len(entries)``).
        """
        kept = {k: v for k, v in entry.items() if v is not None}
        with self._lock:
            self._total += 1
            kept = {"n": self._total, **kept}
            self._entries.append(kept)
        return kept

    def snapshot(self) -> list[dict]:
        """The current ring contents, oldest first (copies)."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def tail(self, count: int) -> list[dict]:
        """The newest ``count`` entries, oldest first."""
        with self._lock:
            entries = list(self._entries)
        return [dict(entry) for entry in entries[-count:]]

    @property
    def total(self) -> int:
        """How many requests have ever been recorded."""
        with self._lock:
            return self._total

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
