"""Unified observability: metrics registry, spans, traces, reports.

One subsystem shared by the compiler, the runtime engine, and the
harness:

* :mod:`repro.obs.metrics` — process-wide registry of counters, gauges
  and histograms charged at the hot seams (caches, realizations,
  allocator, verifier, backends, tuner), rendered as a Prometheus-style
  text exposition;
* :mod:`repro.obs.spans` — hierarchical ``with span(...)`` timing that
  emits paired ``SPAN_START``/``SPAN_END`` telemetry events and charges
  the phase timers exactly once per outermost occurrence;
* :mod:`repro.obs.tracefile` — JSONL trace tooling (summary, filter,
  diff, Chrome/Perfetto export, cross-node merge and slow-request
  ranking) behind ``repro trace``;
* :mod:`repro.obs.tracectx` — the ambient distributed trace context
  (``trace_id`` / ``parent_span_id``) that rides protocol-v2 requests
  across daemon hops;
* :mod:`repro.obs.log` — leveled structured JSONL logging with
  deterministic field ordering and automatic trace attachment;
* :mod:`repro.obs.flight` — the per-daemon flight recorder (a bounded
  ring of recent request summaries, served at ``/debug/requests``);
* :mod:`repro.obs.report` — the versioned machine-readable bench
  report behind ``repro bench --report``.

See ``docs/observability.md`` for the span vocabulary, the metric
catalog, and the trace-file schema.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
    reset_registry,
)
from repro.obs.report import (
    SCHEMA,
    SCHEMA_VERSION,
    build_bench_report,
    load_report,
    validate_bench_report,
    write_report,
)
from repro.obs.flight import FlightRecorder
from repro.obs.log import StructuredLogger, get_logger
from repro.obs.spans import current_hub, current_span, span, use_hub
from repro.obs.tracectx import (
    TraceContext,
    current_trace,
    new_trace_id,
    use_trace,
)
from repro.obs.tracefile import (
    TRACE_SCHEMA_VERSION,
    diff_traces,
    filter_trace,
    merge_traces,
    merged_to_chrome,
    parse_trace_text,
    read_trace,
    slow_traces,
    summarize_trace,
    to_chrome,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA",
    "SCHEMA_VERSION",
    "StructuredLogger",
    "TRACE_SCHEMA_VERSION",
    "TraceContext",
    "build_bench_report",
    "current_hub",
    "current_span",
    "current_trace",
    "diff_traces",
    "filter_trace",
    "get_logger",
    "get_registry",
    "load_report",
    "merge_traces",
    "merged_to_chrome",
    "new_trace_id",
    "parse_trace_text",
    "read_trace",
    "render_prometheus",
    "reset_registry",
    "slow_traces",
    "span",
    "summarize_trace",
    "to_chrome",
    "use_trace",
    "validate_bench_report",
    "write_report",
]
