"""Unified observability: metrics registry, spans, traces, reports.

One subsystem shared by the compiler, the runtime engine, and the
harness:

* :mod:`repro.obs.metrics` — process-wide registry of counters, gauges
  and histograms charged at the hot seams (caches, realizations,
  allocator, verifier, backends, tuner), rendered as a Prometheus-style
  text exposition;
* :mod:`repro.obs.spans` — hierarchical ``with span(...)`` timing that
  emits paired ``SPAN_START``/``SPAN_END`` telemetry events and charges
  the phase timers exactly once per outermost occurrence;
* :mod:`repro.obs.tracefile` — JSONL trace tooling (summary, filter,
  diff, Chrome/Perfetto export) behind ``repro trace``;
* :mod:`repro.obs.report` — the versioned machine-readable bench
  report behind ``repro bench --report``.

See ``docs/observability.md`` for the span vocabulary, the metric
catalog, and the trace-file schema.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
    reset_registry,
)
from repro.obs.report import (
    SCHEMA,
    SCHEMA_VERSION,
    build_bench_report,
    load_report,
    validate_bench_report,
    write_report,
)
from repro.obs.spans import current_hub, current_span, span, use_hub
from repro.obs.tracefile import (
    TRACE_SCHEMA_VERSION,
    diff_traces,
    filter_trace,
    read_trace,
    summarize_trace,
    to_chrome,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA",
    "SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "build_bench_report",
    "current_hub",
    "current_span",
    "diff_traces",
    "filter_trace",
    "get_registry",
    "load_report",
    "read_trace",
    "render_prometheus",
    "reset_registry",
    "span",
    "summarize_trace",
    "to_chrome",
    "use_hub",
    "validate_bench_report",
    "write_report",
]
