"""Machine-readable bench reports (the artifact CI compares across PRs).

``repro bench --report out.json`` (and the benchmark harness itself)
serialize one run of the suite into a versioned JSON document: which
kernels ran, what the tuner picked, how long everything took in
simulated cycles, how the caches performed, and the final metrics
registry snapshot.  The schema is deliberately small and validated by
:func:`validate_bench_report`, so a CI job can fail fast on a malformed
or metric-less report instead of silently comparing garbage.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

SCHEMA = "orion-bench-report"
SCHEMA_VERSION = 1

_KERNEL_FIELDS = {
    "name": str,
    "final_version": str,
    "occupancy": (int, float),
    "regs_per_thread": int,
    "total_cycles": int,
    "iterations": int,
    "was_split": bool,
}


def git_revision() -> str | None:
    """The current git SHA, best-effort (``None`` outside a checkout)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            stdin=subprocess.DEVNULL,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _cache_payload(stats) -> dict:
    return {
        "hits": stats.hits,
        "memory_hits": stats.memory_hits,
        "disk_hits": stats.disk_hits,
        "misses": stats.misses,
        "stores": stats.stores,
        "hit_rate": stats.hit_rate,
    }


def build_bench_report(
    arch_name: str,
    backend_name: str,
    rows,
    measurement_stats,
    compile_stats=None,
    telemetry=None,
    metrics_snapshot=None,
    generator: str = "repro bench",
    strategy: str = "local-spill",
) -> dict:
    """Assemble one run's report.

    ``rows`` is the ``bench_suite`` result — ``(name, ExecutionReport)``
    pairs; ``measurement_stats``/``compile_stats`` are
    :class:`~repro.perf.cache.CacheStats`; ``telemetry`` a
    :class:`~repro.runtime.telemetry.TelemetryHub` whose per-kind counts
    are embedded; ``metrics_snapshot`` defaults to the process-wide
    registry's snapshot.  ``strategy`` records the allocation-strategy
    selector the suite compiled under; each kernel row also carries the
    *winning version's* concrete strategy, so a mixed run shows which
    spill target each kernel's tuner actually picked.
    """
    if metrics_snapshot is None:
        from repro.obs.metrics import get_registry

        metrics_snapshot = get_registry().snapshot()
    from repro import accel
    from repro.perf.timers import TIMERS

    timings = {
        name: {"calls": stats.calls, "seconds": stats.seconds}
        for name, stats in sorted(TIMERS.snapshot().items())
    }
    kernels = []
    for name, report in rows:
        final = report.final_version
        kernels.append(
            {
                "name": name,
                "final_version": report.final_label,
                "occupancy": final.occupancy,
                "regs_per_thread": final.regs_per_thread,
                "smem_per_block": final.smem_per_block,
                "total_cycles": report.total_cycles,
                "iterations": len(report.records),
                "iterations_to_converge": report.iterations_to_converge,
                "was_split": report.was_split,
                "strategy": getattr(final, "strategy", "local-spill"),
            }
        )
    payload = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "generator": generator,
        "git_sha": git_revision(),
        "arch": arch_name,
        "backend": backend_name,
        "strategy": strategy,
        "kernels": kernels,
        "cache": {"measurement": _cache_payload(measurement_stats)},
        "metrics": metrics_snapshot,
        # Which accelerators were live and where the wall-clock went —
        # the two facts a perf-trajectory comparison needs.
        "accel": accel.accel_info(),
        "timings": timings,
    }
    if compile_stats is not None:
        payload["cache"]["compile"] = _cache_payload(compile_stats)
    if telemetry is not None:
        payload["telemetry"] = {
            "event_counts": {
                kind.value: count
                for kind, count in sorted(
                    telemetry.counts.items(), key=lambda kv: kv[0].value
                )
            }
        }
    return payload


def validate_bench_report(report: dict) -> list[str]:
    """Schema check; returns problem descriptions (empty = valid).

    Deliberately strict about the pieces CI consumes: the schema
    identifier/version, per-kernel timing fields, cache hit-rate
    numbers, and the presence of cache metrics in the registry
    snapshot.
    """
    errors: list[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != SCHEMA:
        errors.append(f"schema is {report.get('schema')!r}, want {SCHEMA!r}")
    if report.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version is {report.get('schema_version')!r}, "
            f"want {SCHEMA_VERSION}"
        )
    kernels = report.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        errors.append("kernels: missing or empty")
    else:
        for i, kernel in enumerate(kernels):
            if not isinstance(kernel, dict):
                errors.append(f"kernels[{i}]: not an object")
                continue
            for field, types in _KERNEL_FIELDS.items():
                if not isinstance(kernel.get(field), types):
                    errors.append(
                        f"kernels[{i}].{field}: missing or wrong type"
                    )
            # Optional (absent in pre-strategy reports); typed when given.
            if "strategy" in kernel and not isinstance(
                kernel["strategy"], str
            ):
                errors.append(f"kernels[{i}].strategy: not a string")
    if "strategy" in report and not isinstance(report["strategy"], str):
        errors.append("strategy: not a string")
    cache = report.get("cache")
    if not isinstance(cache, dict) or "measurement" not in cache:
        errors.append("cache.measurement: missing")
    else:
        for tier, stats in cache.items():
            if not isinstance(stats, dict) or not isinstance(
                stats.get("hit_rate"), (int, float)
            ):
                errors.append(f"cache.{tier}.hit_rate: missing or not numeric")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict) or not isinstance(
        metrics.get("metrics"), list
    ):
        errors.append("metrics: missing registry snapshot")
    else:
        names = {f.get("name") for f in metrics["metrics"]}
        if "orion_cache_lookups_total" not in names:
            errors.append(
                "metrics: cache hit-rate metric "
                "orion_cache_lookups_total is absent"
            )
    return errors


def compare_reports(
    baseline: dict,
    current: dict,
    threshold: float = 0.25,
    min_seconds: float = 0.05,
    slack_seconds: float = 0.5,
) -> list[str]:
    """Regression-check ``current`` against a committed ``baseline``.

    Returns problem descriptions (empty = no regression).  Two gates:

    * **determinism** — a kernel present in both reports must report
      exactly the same ``total_cycles`` and ``final_version``; simulated
      results are machine-independent, so any drift is a real behaviour
      change, not noise.
    * **per-phase slowdown** — a timed phase more than ``threshold``
      slower than the baseline predicts.  Wall-clock comparisons across
      machines need normalization: each phase's expectation is scaled
      by the overall speed ratio (total comparable seconds, current /
      baseline), so a uniformly slower CI box shifts every expectation
      while a phase regressing relative to its peers sticks out.
      Phases under ``min_seconds`` in the baseline are ignored, and a
      phase must exceed its expectation by both ``threshold`` *and*
      ``slack_seconds`` — scheduler jitter on a short phase is noise,
      not a regression.
    """
    problems: list[str] = []
    base_strategy = baseline.get("strategy")
    cur_strategy = current.get("strategy")
    if (
        base_strategy is not None
        and cur_strategy is not None
        and base_strategy != cur_strategy
    ):
        problems.append(
            f"allocation strategy changed {base_strategy!r} -> "
            f"{cur_strategy!r}: reports are not comparable"
        )
    base_kernels = {k.get("name"): k for k in baseline.get("kernels", [])}
    for kernel in current.get("kernels", []):
        base = base_kernels.get(kernel.get("name"))
        if base is None:
            continue
        for field in ("total_cycles", "final_version"):
            if kernel.get(field) != base.get(field):
                problems.append(
                    f"kernel {kernel['name']}: {field} changed "
                    f"{base.get(field)!r} -> {kernel.get(field)!r}"
                )
        # Present in both reports → the winner's spill target must agree
        # (absent in pre-strategy baselines, where it is local-spill).
        if (
            "strategy" in kernel
            and "strategy" in base
            and kernel["strategy"] != base["strategy"]
        ):
            problems.append(
                f"kernel {kernel['name']}: winning strategy changed "
                f"{base['strategy']!r} -> {kernel['strategy']!r}"
            )
    base_timings = baseline.get("timings") or {}
    cur_timings = current.get("timings") or {}
    comparable = []
    for name, base_stat in sorted(base_timings.items()):
        cur_stat = cur_timings.get(name)
        if cur_stat is None or base_stat["seconds"] < min_seconds:
            continue
        comparable.append((name, base_stat["seconds"], cur_stat["seconds"]))
    if comparable:
        base_total = sum(b for _, b, _ in comparable)
        cur_total = sum(c for _, _, c in comparable)
        scale = cur_total / base_total
        for name, base_seconds, cur_seconds in comparable:
            expected = base_seconds * scale
            if (
                cur_seconds > expected * (1.0 + threshold)
                and cur_seconds - expected > slack_seconds
            ):
                problems.append(
                    f"phase {name}: {cur_seconds:.3f}s vs {expected:.3f}s "
                    f"expected from baseline (>{threshold:.0%} slowdown)"
                )
    return problems


def write_report(report: dict, path: str | Path) -> Path:
    """Write the report as stable, diffable JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))
