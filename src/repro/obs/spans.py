"""Hierarchical spans: one timing API across compiler, runtime, harness.

``with span("allocate", kernel=...)`` is the successor of the old
``PhaseTimers.phase`` context manager, with three upgrades:

* **trace events** — when a :class:`~repro.runtime.telemetry.TelemetryHub`
  is installed (:func:`use_hub`), every span emits paired
  ``SPAN_START``/``SPAN_END`` events, so JSONL traces interleave timing
  structure with the engine's existing event stream.  Span ids are
  allocated *per session scope* by the hub, which keeps a session's
  event subsequence deterministic under any scheduler interleaving;
  wall-clock durations ride in the event's separate optional ``wall``
  field so traces stay diffable (and byte-identical when the hub
  suppresses durations).
* **re-entrancy safety** — a span nested inside a same-named span
  charges nothing extra: only the outermost occurrence per thread
  charges :data:`repro.perf.timers.TIMERS` and the span metrics, so
  recursive or re-entered phases no longer double-count.
* **metrics** — outermost spans also charge ``orion_spans_total`` and
  ``orion_span_seconds_total`` in the process-wide metrics registry.

The hub installation is process-global (not thread-local) on purpose:
the execution engine installs its hub once and spans opened by its
scheduler's *worker threads* still find it.  Span nesting state is
thread-local, so parent/child links never cross threads.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.metrics import get_registry
from repro.perf.timers import TIMERS

_hubs: list = []
_hubs_lock = threading.Lock()
_local = threading.local()

_SPAN_KINDS = None  # resolved lazily to avoid an import cycle


def _span_kinds():
    global _SPAN_KINDS
    if _SPAN_KINDS is None:
        from repro.runtime.telemetry import EventKind

        _SPAN_KINDS = (EventKind.SPAN_START, EventKind.SPAN_END)
    return _SPAN_KINDS


def current_hub():
    """The innermost installed hub, or ``None`` outside any trace."""
    with _hubs_lock:
        return _hubs[-1] if _hubs else None


@contextmanager
def use_hub(hub) -> Iterator[object]:
    """Install ``hub`` as the ambient span destination.

    Nestable and re-entrant: installing the same hub twice (the engine
    does, ``run_many`` → ``run`` → ``measure``) is harmless, and
    uninstalling removes one occurrence of exactly that hub, so
    concurrent installs from scheduler threads never pop a stranger.
    """
    with _hubs_lock:
        _hubs.append(hub)
    try:
        yield hub
    finally:
        with _hubs_lock:
            for i in range(len(_hubs) - 1, -1, -1):
                if _hubs[i] is hub:
                    del _hubs[i]
                    break


@dataclass
class _ActiveSpan:
    name: str
    session: str | None
    span_id: int | None


def _stack() -> list[_ActiveSpan]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span() -> _ActiveSpan | None:
    """The innermost span open on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def span(
    name: str, session: str | None = None, timer: bool = True, **labels
) -> Iterator[None]:
    """Open one hierarchical span.

    ``session`` labels the emitted events (and scopes the span id);
    ``labels`` ride in both the start and end events' data.  ``timer``
    controls whether the span charges the process-wide phase timers and
    span metrics (outermost same-named occurrence only).
    """
    hub = current_hub()
    stack = _stack()
    span_id = parent = None
    if hub is not None:
        start_kind, end_kind = _span_kinds()
        span_id = hub.next_span_id(session)
        for active in reversed(stack):
            if active.session == session and active.span_id is not None:
                parent = active.span_id
                break
        hub.emit(
            start_kind, session, name=name, span=span_id, parent=parent,
            **labels,
        )
    reentrant = any(active.name == name for active in stack)
    stack.append(_ActiveSpan(name, session, span_id))
    start = time.perf_counter()
    status = "ok"
    try:
        yield
    except BaseException:
        status = "error"
        raise
    finally:
        elapsed = time.perf_counter() - start
        stack.pop()
        if timer and not reentrant:
            TIMERS.add(name, elapsed)
            registry = get_registry()
            registry.counter(
                "orion_spans_total", "Completed spans per span name."
            ).inc(name=name)
            registry.counter(
                "orion_span_seconds_total",
                "Wall-clock seconds spent inside spans, outermost "
                "occurrence per name only.",
            ).inc(elapsed, name=name)
        if hub is not None:
            hub.emit(
                end_kind,
                session,
                wall=elapsed,
                name=name,
                span=span_id,
                parent=parent,
                status=status,
                **labels,
            )
