"""Compilation-speed smoke test over the full benchmark suite.

Guards the fast-compilation layer three ways:

* the whole ``bench/kernels.py`` suite compiles inside a wall-clock
  budget (the bitset dataflow + incremental colouring rewrite brought a
  cold pass from minutes to seconds — the budget catches an order-of-
  magnitude regression, not noise);
* a second pass over the same inputs is served by the compile cache
  (hit rate > 0, every compile a hit) and returns byte-identical fat
  binaries;
* the parallel candidate-realisation path produces bytes identical to
  the sequential path.
"""

from __future__ import annotations

import time

from repro.arch import GTX680
from repro.bench.kernels import BENCHMARKS
from repro.compiler.pipeline import CompileOptions, compile_binary
from repro.perf.cache import CompileCache

#: Generous CI allowance; a warm laptop does the cold pass in ~15s.
COLD_BUDGET_SECONDS = 240.0


def _options(spec) -> CompileOptions:
    return CompileOptions(
        arch=GTX680,
        block_size=spec.workload.block_size,
        can_tune=spec.workload.can_tune,
    )


def _compile_suite(cache: CompileCache) -> dict[str, bytes]:
    binaries = {}
    for name, spec in sorted(BENCHMARKS.items()):
        module = spec.build()
        binary = compile_binary(
            module, module.kernel().name, _options(spec), cache=cache
        )
        binaries[name] = binary.to_bytes()
    return binaries


def test_suite_cold_warm_and_parallel(save_artifact):
    cache = CompileCache()  # isolated: no disk tier, fresh counters

    start = time.perf_counter()
    cold = _compile_suite(cache)
    cold_seconds = time.perf_counter() - start
    assert cold_seconds < COLD_BUDGET_SECONDS, (
        f"cold compile pass took {cold_seconds:.1f}s "
        f"(budget {COLD_BUDGET_SECONDS:.0f}s)"
    )
    assert cache.stats.hits == 0
    assert cache.stats.misses == len(BENCHMARKS)

    start = time.perf_counter()
    warm = _compile_suite(cache)
    warm_seconds = time.perf_counter() - start
    assert warm == cold  # cache returns exactly what was compiled
    assert cache.stats.hit_rate > 0
    assert cache.stats.hits == len(BENCHMARKS)  # every warm compile hit
    assert warm_seconds < cold_seconds

    # Parallel realization is byte-identical to sequential.  One
    # upward-tuning benchmark exercises the multi-candidate pool path.
    spec = BENCHMARKS["srad"]
    module = spec.build()
    kernel = module.kernel().name
    sequential = compile_binary(
        module, kernel, _options(spec), jobs=1, use_cache=False
    )
    parallel = compile_binary(
        module, kernel, _options(spec), jobs=4, use_cache=False
    )
    assert parallel.to_bytes() == sequential.to_bytes()

    save_artifact(
        "perf_smoke",
        (
            f"cold pass: {cold_seconds:.2f}s for {len(BENCHMARKS)} benchmarks\n"
            f"warm pass: {warm_seconds:.2f}s "
            f"(cache hit rate {100 * cache.stats.hit_rate:.0f}%)\n"
            f"parallel == sequential bytes: True"
        ),
    )
