"""Figure 2: matrixMul runtime vs occupancy — the plateau case.

Paper: performance improves with occupancy until ~50%, then stays flat
to 100% because the kernel has little register pressure; the plateau is
what makes "lowest occupancy with best performance" a useful target.
"""

import pytest

from repro.harness import figure2


@pytest.fixture(scope="module")
def sweep():
    return figure2()


def check_low_end(sweep):
    assert sweep.points[0].cycles / sweep.best.cycles >= 1.5


def check_plateau(sweep):
    """All levels at >=50% occupancy perform within ~25% of each other."""
    upper = [p.cycles for p in sweep.points if p.occupancy >= 0.5]
    assert max(upper) / min(upper) <= 1.25


def check_no_spills_at_top(sweep):
    """The plateau exists because pressure is low: no spilling at 100%."""
    assert sweep.points[-1].version.outcome.spilled_variables == 0


def test_figure2_regenerates(benchmark, sweep, save_artifact):
    result = benchmark.pedantic(figure2, rounds=1, iterations=1)
    save_artifact("fig02_matrixmul_c2075", result.render(to="best"))
    assert len(result.points) == 6  # 0.167 .. 1.0
    check_low_end(result)
    check_plateau(result)
    check_no_spills_at_top(result)


def test_low_occupancy_is_slow(sweep):
    check_low_end(sweep)


def test_plateau_above_half(sweep):
    check_plateau(sweep)


def test_no_spills_at_full_occupancy(sweep):
    check_no_spills_at_top(sweep)
