"""Figure 5: optimised vs unoptimised inter-procedure allocation.

Paper: disabling space minimisation or movement minimisation slows the
seven call-heavy benchmarks by up to ~18%; "minimizing data movement is
extremely critical for minimal space optimization to work".
"""

import pytest

from repro.harness import figure5, render_figure5


@pytest.fixture(scope="module")
def rows():
    return figure5()


def check_ablations_never_help(rows):
    for row in rows:
        assert row.no_space_minimization >= 0.98, row
        assert row.no_movement_minimization >= 0.98, row


def check_space_minimization_matters(rows):
    assert max(r.no_space_minimization for r in rows) >= 1.05


def check_km_layout_never_moves_more(rows):
    for row in rows:
        assert row.optimized_moves <= row.unoptimized_moves, row


def check_moves_exist_to_save(rows):
    assert any(r.unoptimized_moves > 0 for r in rows)


def test_figure5_regenerates(benchmark, rows, save_artifact):
    result = benchmark.pedantic(figure5, rounds=1, iterations=1)
    save_artifact("fig05_interproc_ablation_c2075", render_figure5(result))
    assert len(result) == 7
    check_ablations_never_help(result)
    check_space_minimization_matters(result)
    check_km_layout_never_moves_more(result)
    check_moves_exist_to_save(result)


def test_ablations_never_help(rows):
    check_ablations_never_help(rows)


def test_some_benchmark_pays_for_no_space_minimization(rows):
    check_space_minimization_matters(rows)


def test_movement_minimization_reduces_static_moves(rows):
    check_km_layout_never_moves_more(rows)


def test_call_heavy_benchmarks_have_moves_to_save(rows):
    check_moves_exist_to_save(rows)
