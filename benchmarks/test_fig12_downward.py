"""Figure 12: downward occupancy tuning — registers saved, runtime kept.

Paper: for the five low-pressure benchmarks Orion lowers occupancy and
register-file use by ~19% on average with little performance loss (and
a small average speedup on the C2075); backprop cannot be tuned and
stays at 1.0/1.0.
"""

import pytest

from repro.arch import GTX680, TESLA_C2075
from repro.harness import average_register_saving, figure12, render_figure12


@pytest.fixture(scope="module")
def rows_c2075():
    return figure12(TESLA_C2075)


@pytest.fixture(scope="module")
def rows_gtx680():
    return figure12(GTX680)


def check_average_saving(rows):
    """Paper: 19.17% average occupancy/register reduction."""
    assert average_register_saving(rows) >= 0.08


def check_little_performance_loss(rows):
    for row in rows:
        assert row.normalized_runtime <= 1.06, row


def check_backprop_untouched(rows):
    """Paper: backprop's kernel is too small to tune — left as-is."""
    backprop = next(r for r in rows if r.benchmark == "backprop")
    assert backprop.normalized_registers == pytest.approx(1.0)
    assert backprop.normalized_runtime == pytest.approx(1.0, abs=0.02)


def check_deep_saving_somewhere(rows):
    """srad/gaussian-like kernels drop occupancy substantially for free."""
    assert min(r.normalized_registers for r in rows) <= 0.80


def _check_all(rows):
    assert len(rows) == 5
    check_average_saving(rows)
    check_little_performance_loss(rows)
    check_backprop_untouched(rows)
    check_deep_saving_somewhere(rows)


def test_figure12_c2075(benchmark, rows_c2075, save_artifact):
    result = benchmark.pedantic(figure12, args=(TESLA_C2075,), rounds=1, iterations=1)
    save_artifact("fig12a_downward_c2075", render_figure12(result, "Tesla C2075"))
    _check_all(result)


def test_figure12_gtx680(benchmark, rows_gtx680, save_artifact):
    result = benchmark.pedantic(figure12, args=(GTX680,), rounds=1, iterations=1)
    save_artifact("fig12b_downward_gtx680", render_figure12(result, "GTX680"))
    _check_all(result)


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_registers_saved_on_average(fixture, request):
    check_average_saving(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_little_performance_loss(fixture, request):
    check_little_performance_loss(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_backprop_not_tuned(fixture, request):
    check_backprop_untouched(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_some_benchmark_halves_pressure(fixture, request):
    check_deep_saving_somewhere(request.getfixturevalue(fixture))
