"""Figure 1: imageDenoising runtime vs occupancy on GTX680.

Paper: a bell curve with ~3x spread — the worst occupancy (lowest)
runs about three times slower than the best (50%), motivating
occupancy tuning in the first place.
"""

import pytest

from repro.harness import figure1


@pytest.fixture(scope="module")
def sweep():
    return figure1()


def check_bell(sweep):
    """Best occupancy sits mid-range, not at either extreme."""
    assert 0.25 <= sweep.best.occupancy <= 0.625


def check_spread(sweep):
    """Paper: ~3x between best and worst occupancy."""
    assert sweep.worst.cycles / sweep.best.cycles >= 2.0


def check_low_end(sweep):
    """The left edge of the bell: latency cannot be hidden."""
    assert sweep.points[0].cycles / sweep.best.cycles >= 1.8


def check_high_end(sweep):
    """The right edge: 63-register pressure forces spills at full occ."""
    highest = sweep.points[-1]
    assert highest.cycles / sweep.best.cycles >= 1.3
    assert highest.version.outcome.spilled_variables > 0


def test_figure1_regenerates(benchmark, sweep, save_artifact):
    result = benchmark.pedantic(figure1, rounds=1, iterations=1)
    save_artifact("fig01_imagedenoising_gtx680", result.render(to="best"))
    assert len(result.points) == 8  # 0.125 .. 1.0
    check_bell(result)
    check_spread(result)
    check_low_end(result)
    check_high_end(result)


def test_shape_is_a_bell(sweep):
    check_bell(sweep)


def test_spread_is_large(sweep):
    check_spread(sweep)


def test_lowest_occupancy_is_slow(sweep):
    check_low_end(sweep)


def test_highest_occupancy_pays_spill_cost(sweep):
    check_high_end(sweep)
