"""Ablations of Orion's own design choices (beyond the paper's Fig. 5).

DESIGN.md calls out three tunable design decisions; each gets an
ablation here:

* **dynamic vs static selection** — how much the Fig. 9 runtime buys
  over the compiler's static pick alone;
* **tolerance band** — the 2% plateau band drives the "lowest occupancy
  at equal performance" resource savings; with a zero band the
  downward search stalls at the first noise bump;
* **fail-safe versions** — without the opposite-direction candidate, a
  mispredicted direction costs real performance.
"""

import pytest

from repro.arch import GTX680, TESLA_C2075
from repro.bench.kernels import BENCHMARKS
from repro.compiler import CompileOptions, compile_binary
from repro.runtime import DynamicTuner, OrionRuntime, Workload
from repro.harness.experiments import _workload, compiled


@pytest.fixture(scope="module")
def imaged_binary():
    return compiled(BENCHMARKS["imageDenoising"], GTX680)


@pytest.fixture(scope="module")
def gaussian_binary():
    return compiled(BENCHMARKS["gaussian"], TESLA_C2075)


def _run(arch, binary, spec, tolerance=0.02):
    runtime = OrionRuntime(arch, binary, slowdown_tolerance=tolerance)
    return runtime.execute(_workload(spec))


def test_dynamic_beats_or_matches_static(benchmark, imaged_binary, save_artifact):
    """Dynamic feedback never loses to the static heuristic pick."""
    spec = BENCHMARKS["imageDenoising"]

    def ablation():
        dynamic = _run(GTX680, imaged_binary, spec)
        module = spec.build()
        static = compile_binary(
            module,
            module.kernel().name,
            CompileOptions(arch=GTX680, can_tune=False),
        )
        static_report = _run(GTX680, static, spec)
        return dynamic, static_report

    dynamic, static_report = benchmark.pedantic(ablation, rounds=1, iterations=1)
    ratio = static_report.total_cycles / dynamic.total_cycles
    save_artifact(
        "ablation_dynamic_vs_static",
        "Ablation: dynamic vs static selection (imageDenoising, GTX680)\n"
        f"dynamic final : {dynamic.final_label} ({dynamic.total_cycles} cycles)\n"
        f"static final  : {static_report.final_label} "
        f"({static_report.total_cycles} cycles)\n"
        f"static/dynamic: {ratio:.4f}",
    )
    assert ratio >= 0.95  # dynamic may pay small trial overhead
    assert dynamic.iterations_to_converge is not None


def test_zero_tolerance_saves_fewer_resources(benchmark, gaussian_binary, save_artifact):
    """The tolerance band is what lets the downward search keep walking."""
    spec = BENCHMARKS["gaussian"]

    def ablation():
        with_band = _run(TESLA_C2075, gaussian_binary, spec, tolerance=0.02)
        without = _run(TESLA_C2075, gaussian_binary, spec, tolerance=0.0)
        return with_band, without

    with_band, without = benchmark.pedantic(ablation, rounds=1, iterations=1)
    save_artifact(
        "ablation_tolerance_band",
        "Ablation: tuner tolerance band (gaussian, Tesla C2075)\n"
        f"2% band final  : {with_band.final_label} "
        f"({with_band.final_version.achieved_warps} warps)\n"
        f"zero band final: {without.final_label} "
        f"({without.final_version.achieved_warps} warps)",
    )
    assert (
        with_band.final_version.achieved_warps
        <= without.final_version.achieved_warps
    )


def test_failsafe_rescues_misprediction(benchmark, save_artifact):
    """Strip the fail-safe candidates: a wrong direction gets locked in."""
    spec = BENCHMARKS["imageDenoising"]

    def ablation():
        binary = compiled(spec, GTX680)
        full = DynamicTuner(binary)
        runtimes = {}
        # Synthetic profile where every upward candidate loses badly and
        # the fail-safe (lower occupancy) wins: a forced misprediction.
        for v in binary.versions:
            runtimes[v.label] = 100.0 if v.label == "original" else 150.0
        for v in binary.failsafe:
            runtimes[v.label] = 80.0
        for _ in range(12):
            version = full.next_version()
            full.report(runtimes[version.label])
            if full.converged:
                break
        import dataclasses

        stripped_binary = dataclasses.replace(binary, failsafe=[])
        stripped = DynamicTuner(stripped_binary)
        for _ in range(12):
            version = stripped.next_version()
            stripped.report(runtimes[version.label])
            if stripped.converged:
                break
        return binary, full, stripped, runtimes

    binary, full, stripped, runtimes = benchmark.pedantic(
        ablation, rounds=1, iterations=1
    )
    save_artifact(
        "ablation_failsafe",
        "Ablation: fail-safe candidates under forced misprediction\n"
        f"with fail-safe   : {full.final_version.label} "
        f"(runtime {runtimes[full.final_version.label]})\n"
        f"without fail-safe: {stripped.final_version.label} "
        f"(runtime {runtimes[stripped.final_version.label]})",
    )
    if binary.failsafe:
        assert (
            runtimes[full.final_version.label]
            <= runtimes[stripped.final_version.label]
        )
        assert full.final_version.label == binary.failsafe[0].label
