"""Figure 13: energy of the selected kernel on Tesla C2075.

Paper: lowering occupancy at flat runtime cuts register-file power —
up to 6.7% energy saving; the selected version sits close to the ideal
(exhaustive-search) energy.
"""

import pytest

from repro.harness import figure13, render_figure13


@pytest.fixture(scope="module")
def rows():
    return figure13()


def check_never_worse(rows):
    for row in rows:
        assert row.selected_energy <= 1.03, row


def check_saving_somewhere(rows):
    """Paper: up to 6.7% saving on the tunable benchmarks."""
    assert min(r.selected_energy for r in rows) <= 0.97


def check_ideal_bounds_selected(rows):
    for row in rows:
        assert row.ideal_energy <= row.selected_energy + 1e-9, row


def check_ideal_in_ballpark(rows):
    savings = [1 - r.ideal_energy for r in rows]
    assert max(savings) >= 0.03


def test_figure13_regenerates(benchmark, rows, save_artifact):
    result = benchmark.pedantic(figure13, rounds=1, iterations=1)
    save_artifact("fig13_energy_c2075", render_figure13(result))
    assert len(result) == 5
    check_never_worse(result)
    check_saving_somewhere(result)
    check_ideal_bounds_selected(result)
    check_ideal_in_ballpark(result)


def test_selected_energy_never_worse(rows):
    check_never_worse(rows)


def test_tuning_saves_energy_somewhere(rows):
    check_saving_somewhere(rows)


def test_ideal_bounds_selected(rows):
    check_ideal_bounds_selected(rows)


def test_ideal_savings_in_paper_ballpark(rows):
    check_ideal_in_ballpark(rows)
