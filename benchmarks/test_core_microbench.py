"""Microbenchmarks of the compiler's core algorithms.

Unlike the figure/table files (which regenerate paper artifacts with a
single pedantic round), these exercise the hot algorithmic kernels with
real repetition so pytest-benchmark's statistics mean something — a
performance-regression net for the allocator's building blocks.
"""

import random

import pytest

from repro import accel
from repro.arch import GTX680
from repro.bench.kernels import BENCHMARKS
from repro.ir.cfg import CFG
from repro.ir.interference import InterferenceGraph, build_interference
from repro.ir.liveness import analyze_liveness
from repro.ir.ssa import construct_ssa, destruct_ssa
from repro.regalloc.chaitin import color_graph
from repro.regalloc.matching import min_cost_assignment
from repro.sim.interp import LaunchConfig
from repro.sim.sm import SMSimulator
from repro.sim.trace import generate_warp_traces


@pytest.fixture(scope="module")
def cfd_module():
    return BENCHMARKS["cfd"].build()


@pytest.fixture(scope="module")
def cfd_destructed():
    module = BENCHMARKS["cfd"].build()
    fn = module.kernel()
    construct_ssa(fn, allow_undef=True)
    destruct_ssa(fn)
    return fn


def test_bench_ssa_construction(benchmark, cfd_module):
    # allow_undef mirrors the compiler: cfd's loop accumulator is only
    # defined when the loop body runs (a legal nvcc pattern).
    def run():
        fn = cfd_module.kernel().copy()
        construct_ssa(fn, allow_undef=True)
        return fn

    fn = benchmark(run)
    assert fn.instructions()


def test_bench_liveness(benchmark, cfd_destructed):
    info = benchmark(analyze_liveness, cfd_destructed)
    assert info.max_live > 0


def test_bench_interference_graph(benchmark, cfd_destructed):
    graph = benchmark(build_interference, cfd_destructed)
    assert len(graph) > 50


def test_bench_chaitin_coloring(benchmark, cfd_destructed):
    graph = build_interference(cfd_destructed)

    result = benchmark(color_graph, graph, 64)
    assert not result.spilled


def test_bench_kuhn_munkres_40x40(benchmark):
    rng = random.Random(7)
    cost = [[float(rng.randint(0, 1000)) for _ in range(40)] for _ in range(40)]
    assign = benchmark(min_cost_assignment, cost)
    assert len(set(assign)) == 40


def test_bench_cfg_and_dominators(benchmark, cfd_module):
    fn = cfd_module.kernel()
    cfg = benchmark(CFG, fn)
    assert cfg.rpo


def test_bench_trace_generation(benchmark):
    module = BENCHMARKS["srad"].build()
    launch = LaunchConfig(grid_blocks=8, block_size=256)

    traces = benchmark.pedantic(
        generate_warp_traces,
        args=(module, "kernel", launch, 8),
        kwargs={"max_events_per_warp": 800},
        rounds=3,
        iterations=1,
    )
    assert len(traces) == 8


def test_bench_sm_simulation(benchmark):
    module = BENCHMARKS["srad"].build()
    launch = LaunchConfig(grid_blocks=8, block_size=256)
    traces = generate_warp_traces(
        module, "kernel", launch, 16, max_events_per_warp=800
    )
    sim = SMSimulator(GTX680)

    def run():
        return sim.run(
            [t for t in traces], warps_per_block=8
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.cycles > 0


# ----------------------------------------------------------------------
# The three accelerated seams (ISSUE 6).  One microbench per seam so a
# future regression localizes to simulator wave, matcher solve, or
# engine dispatch instead of the whole suite.
# ----------------------------------------------------------------------
def test_bench_sm_wave_accelerated(benchmark, monkeypatch):
    """Simulator wave through the flat-array fast path."""
    if accel.numpy_or_none() is None:
        pytest.skip("numpy not installed")
    monkeypatch.setenv("ORION_ACCEL", "numpy")
    module = BENCHMARKS["srad"].build()
    launch = LaunchConfig(grid_blocks=8, block_size=256)
    traces = generate_warp_traces(
        module, "kernel", launch, 16, max_events_per_warp=800
    )
    sim = SMSimulator(GTX680)

    def run():
        return sim.run(list(traces), warps_per_block=8)

    accelerated = benchmark.pedantic(run, rounds=3, iterations=1)
    monkeypatch.setenv("ORION_ACCEL", "off")
    assert sim.run(list(traces), warps_per_block=8).cycles == accelerated.cycles


def test_bench_matcher_solve_lapjv_40x40(benchmark, monkeypatch):
    """Matcher solve through the LAPJV fast path."""
    if accel.scipy_optimize_or_none() is None:
        pytest.skip("scipy not installed")
    monkeypatch.setenv("ORION_ACCEL", "numpy")
    rng = random.Random(7)
    cost = [[float(rng.randint(0, 1000)) for _ in range(40)] for _ in range(40)]
    assign = benchmark(min_cost_assignment, cost)
    assert len(set(assign)) == 40


def test_bench_engine_batch_dispatch(benchmark):
    """Pooled measurement dispatch overhead (single-flight + batching)."""
    from repro.runtime.engine import MeasurementPool
    from repro.sim.backend import MeasurementResult

    class _NullBackend:
        name = "null"

        def measure(self, request):
            return MeasurementResult(backend=self.name, cycles=1)

    def run():
        pool = MeasurementPool(_NullBackend(), batch=8)
        return [pool.measure(f"key-{i}", i) for i in range(200)]

    results = benchmark(run)
    assert len(results) == 200
