"""Shared fixtures for the paper-reproduction benchmark harness.

Each ``test_figXX``/``test_tableX`` file regenerates one artifact of the
paper's evaluation section, asserts its *shape* (who wins, by roughly
what factor, where crossovers sit), and writes the rendered rows/series
to ``benchmarks/results/`` so a full run leaves the whole evaluation on
disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
