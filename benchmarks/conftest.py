"""Shared fixtures for the paper-reproduction benchmark harness.

Each ``test_figXX``/``test_tableX`` file regenerates one artifact of the
paper's evaluation section, asserts its *shape* (who wins, by roughly
what factor, where crossovers sit), and writes the rendered rows/series
to ``benchmarks/results/`` so a full run leaves the whole evaluation on
disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture(scope="session", autouse=True)
def bench_report_artifact(results_dir):
    """Leave a machine-readable bench report next to the text artifacts.

    At session teardown, every session the harness executed (whatever
    subset of figures/tables ran) is serialized into one
    ``orion-bench-report`` document, so a benchmarks run is consumable
    by the same ``repro metrics`` tooling as ``repro bench --report``.
    """
    yield

    from repro.harness import experiments
    from repro.obs.report import build_bench_report, write_report
    from repro.perf.cache import default_cache

    executed = sorted(experiments._EXECUTE_CACHE.items())
    if not executed:
        return
    arches = sorted({arch for (_, arch) in experiments._EXECUTE_CACHE})
    rows = [
        (name if len(arches) == 1 else f"{name}@{arch}", report)
        for (name, arch), report in executed
    ]
    document = build_bench_report(
        ",".join(arches),
        "timing",
        rows,
        experiments._MEASUREMENT_CACHE.stats,
        compile_stats=default_cache().stats,
        generator="benchmarks suite",
    )
    path = write_report(document, results_dir / "bench_report.json")
    print(f"\n[bench report saved to {path}]")
