"""Table 2: detailed benchmark information.

Paper columns: Reg (registers needed to avoid spilling), Func (static
function calls after inlining), Smem (user-allocated shared memory).
Our generated benchmark suite reproduces all three per benchmark.
"""

import pytest

from repro.harness import render_table2, table2


@pytest.fixture(scope="module")
def rows():
    return table2()


def check_registers(rows):
    for row in rows:
        assert row.measured_regs == row.paper_regs, row


def check_calls(rows):
    for row in rows:
        assert row.measured_calls == row.paper_calls, row


def check_smem(rows):
    for row in rows:
        assert row.measured_smem == row.paper_smem, row


def check_span(rows):
    regs = {row.benchmark: row.measured_regs for row in rows}
    assert regs["cfd"] == 63 and regs["imageDenoising"] == 63  # highest
    assert regs["gaussian"] == 11  # lowest
    assert max(r for b, r in regs.items() if b in
               ("backprop", "bfs", "gaussian", "srad", "streamcluster")) <= 21


def test_table2_regenerates(benchmark, rows, save_artifact):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    save_artifact("table2_benchmark_info", render_table2(result))
    assert len(result) == 12
    check_registers(result)
    check_calls(result)
    check_smem(result)
    check_span(result)


def test_register_pressure_matches_paper(rows):
    check_registers(rows)


def test_static_calls_match_paper(rows):
    check_calls(rows)


def test_shared_memory_matches_paper(rows):
    check_smem(rows)


def test_pressure_spans_both_tuning_groups(rows):
    check_span(rows)
