"""Figure 10: srad on Tesla C2075 — flat above half occupancy.

Paper: "even reducing the occupancy by half yields nearly the same
performance, and so reducing occupancy is suggested for this program."
"""

import pytest

from repro.harness import figure10


@pytest.fixture(scope="module")
def sweep():
    return figure10()


def check_flat_top(sweep):
    """Levels at >=2/3 occupancy within ~12% of full occupancy."""
    for occupancy, runtime in sweep.normalized(to="max"):
        if occupancy >= 0.66:
            assert runtime <= 1.12, (occupancy, runtime)


def check_half_close_to_full(sweep):
    pairs = dict(sweep.normalized(to="max"))
    half = pairs[min(pairs, key=lambda o: abs(o - 0.5))]
    assert half <= 1.3


def check_low_end(sweep):
    assert sweep.normalized(to="max")[0][1] >= 1.7


def test_figure10_regenerates(benchmark, sweep, save_artifact):
    result = benchmark.pedantic(figure10, rounds=1, iterations=1)
    save_artifact("fig10_srad_c2075", result.render(to="max"))
    assert len(result.points) == 6
    check_flat_top(result)
    check_half_close_to_full(result)
    check_low_end(result)


def test_flat_top(sweep):
    check_flat_top(sweep)


def test_half_occupancy_close_to_full(sweep):
    check_half_close_to_full(sweep)


def test_lowest_occupancy_clearly_slower(sweep):
    check_low_end(sweep)
