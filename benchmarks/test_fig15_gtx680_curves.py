"""Figure 15: occupancy curves on GTX680 — backprop and bfs.

Paper: backprop is a skewed bell (roughly 2x penalty at the lowest
occupancy, little change above 50%); bfs performs best at the highest
occupancy but changes only slightly above 50%.
"""

import pytest

from repro.harness import figure15


@pytest.fixture(scope="module")
def curves():
    return figure15()


def check_low_end_penalty(curves):
    for name in ("backprop", "bfs"):
        pairs = curves[name].normalized(to="best")
        assert pairs[0][1] >= 1.8, name  # paper: >2x at 0.125


def check_flat_above_half(curves):
    """Paper: 'changes only a little when above 50%'."""
    for name in ("backprop", "bfs"):
        pairs = dict(curves[name].normalized(to="best"))
        upper = [r for o, r in pairs.items() if o >= 0.5]
        assert max(upper) / min(upper) <= 2.0, name


def check_bfs_best_high(curves):
    assert curves["bfs"].best.occupancy >= 0.75


def check_monotone_up_to_half(curves):
    for name in ("backprop", "bfs"):
        pairs = curves[name].normalized(to="best")
        lower = [r for o, r in pairs if o <= 0.5]
        assert all(a >= b * 0.98 for a, b in zip(lower, lower[1:])), name


def test_figure15_regenerates(benchmark, curves, save_artifact):
    result = benchmark.pedantic(figure15, rounds=1, iterations=1)
    save_artifact("fig15a_backprop_gtx680", result["backprop"].render(to="best"))
    save_artifact("fig15b_bfs_gtx680", result["bfs"].render(to="best"))
    assert set(result) == {"backprop", "bfs"}
    check_low_end_penalty(result)
    check_flat_above_half(result)
    check_bfs_best_high(result)
    check_monotone_up_to_half(result)


@pytest.mark.parametrize("name", ["backprop", "bfs"])
def test_low_occupancy_penalty(curves, name):
    pairs = curves[name].normalized(to="best")
    assert pairs[0][1] >= 1.8


def test_flat_above_half(curves):
    check_flat_above_half(curves)


def test_bfs_best_at_high_occupancy(curves):
    check_bfs_best_high(curves)


def test_monotone_improvement_up_to_half(curves):
    check_monotone_up_to_half(curves)
