"""Figure 11: the headline — Orion-Min / nvcc / Orion-Max / Orion-Select.

Paper: across the seven upward-tuned benchmarks Orion-Select averages
+26.17% over nvcc on the Tesla C2075 and +24.94% on the GTX680, peaking
at 1.61x; the selected version sits close to the exhaustive-search best
(Orion-Max) and the tuner converges in about three iterations.
"""

import pytest

from repro.arch import GTX680, TESLA_C2075
from repro.harness import average_select_speedup, figure11, render_figure11


@pytest.fixture(scope="module")
def rows_c2075():
    return figure11(TESLA_C2075)


@pytest.fixture(scope="module")
def rows_gtx680():
    return figure11(GTX680)


def check_substantial_average(rows):
    """Paper: ~25-26% average Orion-Select speedup on both machines."""
    assert average_select_speedup(rows) >= 1.10


def check_select_bounded_by_max(rows):
    for row in rows:
        assert row.orion_select <= row.orion_max * 1.01, row


def check_select_close_to_best(rows):
    gaps = [row.orion_select / row.orion_max for row in rows]
    assert min(gaps) >= 0.75
    assert sum(gaps) / len(gaps) >= 0.85


def check_worst_level_loses(rows):
    """Orion-Min shows how bad a wrong occupancy is (paper: down to ~0.4)."""
    assert min(row.orion_min for row in rows) <= 0.8


def check_fast_convergence(rows):
    """Paper: 'less than three iterations on average'."""
    iters = [r.iterations_to_converge or 0 for r in rows]
    assert sum(iters) / len(iters) <= 4


def _check_all(rows):
    assert len(rows) == 7
    check_substantial_average(rows)
    check_select_bounded_by_max(rows)
    check_select_close_to_best(rows)
    check_worst_level_loses(rows)
    check_fast_convergence(rows)


def test_figure11_c2075(benchmark, rows_c2075, save_artifact):
    result = benchmark.pedantic(figure11, args=(TESLA_C2075,), rounds=1, iterations=1)
    save_artifact("fig11a_speedup_c2075", render_figure11(result, "Tesla C2075"))
    _check_all(result)


def test_figure11_gtx680(benchmark, rows_gtx680, save_artifact):
    result = benchmark.pedantic(figure11, args=(GTX680,), rounds=1, iterations=1)
    save_artifact("fig11b_speedup_gtx680", render_figure11(result, "GTX680"))
    _check_all(result)


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_average_speedup_is_substantial(fixture, request):
    check_substantial_average(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_select_never_beats_max(fixture, request):
    check_select_bounded_by_max(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_select_close_to_exhaustive_best(fixture, request):
    check_select_close_to_best(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_worst_occupancy_loses_to_nvcc(fixture, request):
    check_worst_level_loses(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_convergence_within_a_few_iterations(fixture, request):
    check_fast_convergence(request.getfixturevalue(fixture))
