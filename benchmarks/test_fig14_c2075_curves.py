"""Figure 14: occupancy curves on Tesla C2075 — gaussian and streamcluster.

Paper: gaussian is insensitive to occupancy (flat — big resource/energy
saving potential); streamcluster is a skewed bell, best around 75% and
changing little above 50%.
"""

import pytest

from repro.harness import figure14


@pytest.fixture(scope="module")
def curves():
    return figure14()


def check_gaussian_flat(curves):
    """Every occupancy level within ~8% — the insensitive case."""
    cycles = [p.cycles for p in curves["gaussian"].points]
    assert max(cycles) / min(cycles) <= 1.08


def check_streamcluster_shape(curves):
    pairs = dict(curves["streamcluster"].normalized(to="best"))
    lowest = min(pairs)
    assert pairs[lowest] >= 1.6  # low occupancy clearly slower
    upper = [r for o, r in pairs.items() if o >= 0.5]
    assert max(upper) <= 1.45  # little change above 50%


def check_streamcluster_best_high(curves):
    assert curves["streamcluster"].best.occupancy >= 0.5


def test_figure14_regenerates(benchmark, curves, save_artifact):
    result = benchmark.pedantic(figure14, rounds=1, iterations=1)
    save_artifact("fig14a_gaussian_c2075", result["gaussian"].render(to="best"))
    save_artifact(
        "fig14b_streamcluster_c2075", result["streamcluster"].render(to="best")
    )
    assert set(result) == {"gaussian", "streamcluster"}
    check_gaussian_flat(result)
    check_streamcluster_shape(result)
    check_streamcluster_best_high(result)


def test_gaussian_is_flat(curves):
    check_gaussian_flat(curves)


def test_streamcluster_improves_then_flattens(curves):
    check_streamcluster_shape(curves)


def test_streamcluster_best_in_upper_half(curves):
    check_streamcluster_best_high(curves)
