"""Table 3: small-cache (16KB L1) vs large-cache (48KB L1) speedups.

Paper: at Orion's selected occupancy the two configurations usually
perform similarly; the small-cache split is never much worse (explicit
shared memory beats hoping the L1 behaves), and kernels with large
user-declared shared memory cannot run under the large-cache split at
all (empty cells).
"""

import pytest

from repro.arch import GTX680, TESLA_C2075
from repro.harness import render_table3, table3


@pytest.fixture(scope="module")
def rows_c2075():
    return table3(TESLA_C2075)


@pytest.fixture(scope="module")
def rows_gtx680():
    return table3(GTX680)


def check_some_infeasible(rows):
    """Paper: hardware constraints prevent the LC case for some kernels."""
    assert any(row.large_cache is None for row in rows)


def check_dxtc_infeasible(rows):
    """dxtc's user shared memory leaves no room under the 16KB split."""
    dxtc = next(r for r in rows if r.benchmark == "dxtc")
    assert dxtc.large_cache is None


def check_similar_when_both_run(rows):
    """Paper: 'performance is often similar for both configurations'."""
    comparable = [r for r in rows if r.large_cache is not None]
    assert comparable
    for row in comparable:
        assert row.large_cache / row.small_cache >= 0.70, row


def check_small_cache_competitive(rows):
    """Paper: 'overall, it is safer to use shared memory explicitly'."""
    comparable = [r for r in rows if r.large_cache is not None]
    at_least_as_good = sum(
        1 for r in comparable if r.small_cache >= r.large_cache * 0.97
    )
    assert at_least_as_good >= len(comparable) / 2


def _check_all(rows):
    assert len(rows) == 7
    check_some_infeasible(rows)
    check_dxtc_infeasible(rows)
    check_similar_when_both_run(rows)
    check_small_cache_competitive(rows)


def test_table3_c2075(benchmark, rows_c2075, save_artifact):
    result = benchmark.pedantic(table3, args=(TESLA_C2075,), rounds=1, iterations=1)
    save_artifact("table3_cache_c2075", render_table3(result, "Tesla C2075"))
    _check_all(result)


def test_table3_gtx680(benchmark, rows_gtx680, save_artifact):
    result = benchmark.pedantic(table3, args=(GTX680,), rounds=1, iterations=1)
    save_artifact("table3_cache_gtx680", render_table3(result, "GTX680"))
    _check_all(result)


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_some_large_cache_cells_infeasible(fixture, request):
    check_some_infeasible(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_dxtc_cannot_use_large_cache(fixture, request):
    check_dxtc_infeasible(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_configs_perform_similarly_when_both_run(fixture, request):
    check_similar_when_both_run(request.getfixturevalue(fixture))


@pytest.mark.parametrize("fixture", ["rows_c2075", "rows_gtx680"])
def test_small_cache_usually_preferred(fixture, request):
    check_small_cache_competitive(request.getfixturevalue(fixture))
